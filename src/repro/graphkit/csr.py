"""Immutable CSR (compressed sparse row) graph snapshot.

All vectorized kernels in :mod:`repro.graphkit` operate on this structure:
``indptr``/``indices``/``weights`` arrays exactly like ``scipy.sparse.csr_matrix``,
plus cheap conversions to scipy sparse for the linear-algebra-backed
algorithms (eigenvector/Katz/PageRank centrality, Maxent-Stress solves).

Keeping analytics on an immutable snapshot while mutation happens
elsewhere gives us the "views, not copies" and cache-locality idioms from
the HPC guides: a snapshot is built once per widget update and then
shared by every measure.

Incremental updates never mutate a snapshot: an edge diff is expressed as
a :class:`CSRDelta` over packed sorted edge keys (:func:`pack_edge_keys`)
and applied through a :class:`CSRSnapshotBuffer`, which builds the *next*
snapshot with compiled array merges and keeps the old one alive (double
buffering) for in-flight readers such as a worker-thread layout solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np
from scipy import sparse

__all__ = ["CSRGraph", "CSRDelta", "CSRSnapshotBuffer", "pack_edge_keys"]


def pack_edge_keys(n: int, edges: np.ndarray) -> np.ndarray:
    """Sorted int64 keys ``u * n + v`` of canonical ``(u < v)`` edge pairs.

    The shared currency of the incremental-update machinery: sorted key
    arrays make edge-set diffs and merges single compiled passes
    (:func:`numpy.setdiff1d` / :func:`numpy.insert`) instead of
    Python-level set algebra over tuple pairs.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if len(edges) == 0:
        return np.empty(0, dtype=np.int64)
    keys = edges[:, 0] * np.int64(n) + edges[:, 1]
    keys.sort()
    return keys


class CSRGraph:
    """Read-only CSR adjacency.

    Attributes
    ----------
    indptr:
        ``(n+1,)`` int64 row pointers.
    indices:
        ``(nnz,)`` int32 column indices (out-neighbours per row).
    weights:
        ``(nnz,)`` float64 edge weights aligned with ``indices``.
    directed:
        Whether the adjacency is asymmetric.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "directed",
        "_scipy",
        "_pattern",
        "_tails",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        directed: bool = False,
    ):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        if len(self.indices) != len(self.weights):
            raise ValueError("indices and weights must be aligned")
        self.directed = bool(directed)
        self._scipy: sparse.csr_matrix | None = None
        self._pattern: sparse.csr_matrix | None = None
        self._tails: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(
        cls, adj: Sequence[dict[int, float]], *, directed: bool = False
    ) -> "CSRGraph":
        """Build from a dict-of-dicts adjacency list."""
        n = len(adj)
        degrees = np.fromiter((len(a) for a in adj), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int32)
        weights = np.empty(nnz, dtype=np.float64)
        pos = 0
        for a in adj:
            k = len(a)
            if k:
                # Sorted neighbours give deterministic traversal order and
                # better cache behaviour for the frontier kernels.
                items = sorted(a.items())
                indices[pos : pos + k] = [v for v, _ in items]
                weights[pos : pos + k] = [w for _, w in items]
                pos += k
        return cls(indptr, indices, weights, directed=directed)

    @classmethod
    def from_edge_array(
        cls,
        n: int,
        edges: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        directed: bool = False,
    ) -> "CSRGraph":
        """Build from an ``(m, 2)`` edge array (symmetrized if undirected)."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        m = len(edges)
        w = (
            np.ones(m, dtype=np.float64)
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        if not directed and m:
            edges = np.vstack([edges, edges[:, ::-1]])
            w = np.concatenate([w, w])
        mat = sparse.csr_matrix(
            (w, (edges[:, 0], edges[:, 1])), shape=(n, n), dtype=np.float64
        )
        mat.sum_duplicates()
        mat.sort_indices()
        return cls(mat.indptr, mat.indices, mat.data, directed=directed)

    @classmethod
    def from_unique_edge_array(cls, n: int, edges: np.ndarray) -> "CSRGraph":
        """Build an undirected unweighted CSR from *unique* (u < v) pairs.

        The fast path for contact-pair prefixes: one ``lexsort`` over the
        symmetrized arc list plus a ``bincount`` builds the arrays
        directly, skipping scipy's COO validation/dedup machinery (the
        caller guarantees no duplicates and no self-loops).
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        m = len(edges)
        if m == 0:
            return cls(
                np.zeros(n + 1, dtype=np.int64),
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.float64),
            )
        rows = np.concatenate([edges[:, 0], edges[:, 1]])
        cols = np.concatenate([edges[:, 1], edges[:, 0]])
        order = np.lexsort((cols, rows))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return cls(indptr, cols[order], np.ones(2 * m, dtype=np.float64))

    @staticmethod
    def symmetrize_sorted_keys(n: int, keys: np.ndarray) -> np.ndarray:
        """Sorted symmetric arc keys (``tail * n + head``, both directions).

        ``keys`` are the :func:`pack_edge_keys` canonical ``u * n + v``
        values (``u < v``, sorted, duplicate-free). Forward keys have
        ``u < v``, reversed have ``u > v``: disjoint sorted sets, so one
        :func:`numpy.insert` merge yields the fully sorted arc list.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int64)
        u, v = np.divmod(keys, np.int64(n))
        rev = v * np.int64(n) + u
        rev.sort()
        return np.insert(keys, np.searchsorted(keys, rev), rev)

    @classmethod
    def from_sorted_arc_keys(cls, n: int, arc_keys: np.ndarray) -> "CSRGraph":
        """Build an unweighted CSR from sorted symmetric arc keys.

        The delta-apply fast path: :class:`CSRSnapshotBuffer` maintains
        the arc-key array incrementally, so building the next snapshot is
        one ``divmod`` + one ``bincount`` — no sort at all.
        """
        arc_keys = np.asarray(arc_keys, dtype=np.int64)
        if len(arc_keys) == 0:
            return cls(
                np.zeros(n + 1, dtype=np.int64),
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.float64),
            )
        tails, heads = np.divmod(arc_keys, np.int64(n))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(tails, minlength=n), out=indptr[1:])
        return cls(indptr, heads, np.ones(len(arc_keys), dtype=np.float64))

    @classmethod
    def from_sorted_edge_keys(cls, n: int, keys: np.ndarray) -> "CSRGraph":
        """Build an undirected unweighted CSR from sorted packed edge keys
        (:func:`pack_edge_keys` representation)."""
        return cls.from_sorted_arc_keys(n, cls.symmetrize_sorted_keys(n, keys))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        """Number of stored directed arcs (2m for undirected graphs)."""
        return len(self.indices)

    @property
    def m(self) -> int:
        """Number of edges (undirected edges counted once)."""
        return self.nnz if self.directed else self.nnz // 2

    # Duck-type compatibility with the mutable Graph: consumers that only
    # read (measures, trace builders, analyses) accept either structure.
    def number_of_nodes(self) -> int:
        """Alias of :attr:`n` (mutable-``Graph`` API shape)."""
        return self.n

    def number_of_edges(self) -> int:
        """Alias of :attr:`m` (mutable-``Graph`` API shape)."""
        return self.m

    def edge_array(self) -> np.ndarray:
        """``(m, 2)`` int64 edge array (canonical ``u < v`` when undirected)."""
        tails = self.arc_tails()
        if self.directed:
            return np.column_stack([tails, self.indices.astype(np.int64)])
        mask = tails < self.indices
        return np.column_stack([tails[mask], self.indices[mask].astype(np.int64)])

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges; undirected edges are yielded once as (u<v)."""
        for u, v in self.edge_array():
            yield int(u), int(v)

    def edge_set(self) -> set[tuple[int, int]]:
        """Materialize the edge set (canonicalized (u<v) when undirected)."""
        return set(self.iter_edges())

    def degrees(self) -> np.ndarray:
        """Out-degree vector."""
        return np.diff(self.indptr)

    def weighted_degrees(self) -> np.ndarray:
        """Sum of incident weights per node (strength).

        Implemented as a segmented sum over the CSR value array; empty rows
        (isolated nodes) correctly yield 0.
        """
        if self.nnz == 0:
            return np.zeros(self.n, dtype=np.float64)
        cumulative = np.concatenate([[0.0], np.cumsum(self.weights)])
        return cumulative[self.indptr[1:]] - cumulative[self.indptr[:-1]]

    def neighbors(self, u: int) -> np.ndarray:
        """View of the out-neighbour ids of ``u``."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """View of weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def to_scipy(self) -> sparse.csr_matrix:
        """Zero-copy scipy CSR matrix view of the adjacency (cached)."""
        if self._scipy is None:
            n = self.n
            self._scipy = sparse.csr_matrix(
                (self.weights, self.indices, self.indptr), shape=(n, n)
            )
        return self._scipy

    def to_scipy_pattern(self) -> sparse.csr_matrix:
        """0/1 structure matrix of the adjacency (cached).

        The batched BFS kernels advance dense frontiers with products
        against this matrix; sharing it across calls means a BFS-heavy
        measure (closeness, APSP) allocates the pattern once per snapshot.
        """
        if self._pattern is None:
            self._pattern = sparse.csr_matrix(
                (np.ones(self.nnz, dtype=np.float64), self.indices, self.indptr),
                shape=(self.n, self.n),
            )
        return self._pattern

    def arc_tails(self) -> np.ndarray:
        """Row id of every stored arc (cached; aligned with ``indices``).

        The transpose-SpMV scatter uses this every power iteration, so it
        is computed once per snapshot rather than per call.
        """
        if self._tails is None:
            self._tails = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(self.indptr)
            )
        return self._tails

    def arc_gather(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flat storage positions of every arc leaving ``rows``.

        Returns ``(gather, counts)``: ``indices[gather]`` / ``weights[gather]``
        enumerate the rows' arcs contiguously and ``counts`` holds per-row
        out-degrees. Built as one shifted ``arange`` (``starts[i] + 0..k_i``
        per segment) — a single ``repeat`` instead of per-node slicing.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), counts
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        gather = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)
        return gather, counts

    def expand_frontier(self, frontier: np.ndarray) -> np.ndarray:
        """All out-neighbours of the nodes in ``frontier`` (with repeats)."""
        frontier = np.asarray(frontier, dtype=np.int64)
        gather, _ = self.arc_gather(frontier)
        if len(gather) == 0:
            return np.empty(0, dtype=np.int32)
        return self.indices[gather]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n={self.n}, m={self.m}, directed={self.directed})"


@dataclass(frozen=True)
class CSRDelta:
    """An edge diff between two RIN states, in packed sorted-key form.

    ``add_keys`` / ``remove_keys`` are disjoint sorted int64 arrays of
    canonical ``u * n + v`` keys (``u < v``) — the exact representation
    :func:`pack_edge_keys` produces. Applying a delta is two compiled
    array passes (a ``searchsorted`` keep-mask and an ``insert`` merge);
    no per-edge Python mutation anywhere.
    """

    n: int
    add_keys: np.ndarray
    remove_keys: np.ndarray

    @classmethod
    def between(
        cls, n: int, current_keys: np.ndarray, target_keys: np.ndarray
    ) -> "CSRDelta":
        """Delta turning ``current_keys`` into ``target_keys`` (both sorted)."""
        return cls(
            n=int(n),
            add_keys=np.setdiff1d(target_keys, current_keys, assume_unique=True),
            remove_keys=np.setdiff1d(current_keys, target_keys, assume_unique=True),
        )

    @property
    def added(self) -> int:
        """Number of inserted edges."""
        return len(self.add_keys)

    @property
    def removed(self) -> int:
        """Number of deleted edges."""
        return len(self.remove_keys)

    @property
    def total(self) -> int:
        """Number of touched edges."""
        return self.added + self.removed

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Unpack to ``(added, removed)`` ``(k, 2)`` edge arrays."""
        return (
            np.column_stack(np.divmod(self.add_keys, np.int64(self.n))),
            np.column_stack(np.divmod(self.remove_keys, np.int64(self.n))),
        )

    def inverse(self) -> "CSRDelta":
        """The delta undoing this one (adds become removes and vice versa)."""
        return CSRDelta(self.n, add_keys=self.remove_keys, remove_keys=self.add_keys)

    def compose(self, other: "CSRDelta") -> "CSRDelta":
        """One delta equivalent to applying ``self`` then ``other``.

        For every key set on which the sequence is *valid* (each delta
        only adds absent keys and removes present ones — what
        :meth:`between` produces), ``self.compose(other).apply(keys)``
        equals ``other.apply(self.apply(keys))``: an edge added then
        removed (or vice versa) cancels out of the composite entirely.
        """
        if other.n != self.n:
            raise ValueError(f"cannot compose deltas over n={self.n} and n={other.n}")
        return CSRDelta(
            self.n,
            add_keys=np.union1d(
                np.setdiff1d(self.add_keys, other.remove_keys, assume_unique=True),
                np.setdiff1d(other.add_keys, self.remove_keys, assume_unique=True),
            ),
            remove_keys=np.union1d(
                np.setdiff1d(self.remove_keys, other.add_keys, assume_unique=True),
                np.setdiff1d(other.remove_keys, self.add_keys, assume_unique=True),
            ),
        )

    def apply(self, keys: np.ndarray) -> np.ndarray:
        """New sorted key array after removing/adding this delta's edges."""
        keys = np.asarray(keys, dtype=np.int64)
        if len(self.remove_keys) and len(keys):
            pos = np.searchsorted(self.remove_keys, keys)
            pos = np.minimum(pos, len(self.remove_keys) - 1)
            keys = keys[self.remove_keys[pos] != keys]
        if len(self.add_keys):
            keys = np.insert(keys, np.searchsorted(keys, self.add_keys), self.add_keys)
        return keys


class CSRSnapshotBuffer:
    """Double-buffered immutable CSR snapshots for incremental updates.

    The interactive pipeline reads analytics off an immutable
    :class:`CSRGraph` while slider events mutate the edge set. Applying a
    :class:`CSRDelta` builds the *next* snapshot from the merged key array
    and swaps buffers: :attr:`current` becomes the new front, the old
    front survives as :attr:`previous` so in-flight readers (a layout
    solve running on a worker thread) keep a consistent view until they
    finish. Snapshots are never mutated in place.
    """

    __slots__ = ("_n", "_keys", "_arc_keys", "_front", "_back")

    def __init__(self, n: int, keys: np.ndarray | None = None):
        self._n = int(n)
        self._keys = (
            np.empty(0, dtype=np.int64)
            if keys is None
            else np.asarray(keys, dtype=np.int64)
        )
        # The symmetrized arc-key array is maintained *incrementally*
        # across applies: a delta of k edges costs O(k log k + m) compiled
        # merge work, and snapshot construction needs no sort at all.
        self._arc_keys = CSRGraph.symmetrize_sorted_keys(self._n, self._keys)
        self._front = CSRGraph.from_sorted_arc_keys(self._n, self._arc_keys)
        self._back: CSRGraph | None = None

    @classmethod
    def from_edges(cls, n: int, edges: np.ndarray) -> "CSRSnapshotBuffer":
        """Build from an ``(m, 2)`` canonical (u < v) edge array."""
        return cls(n, pack_edge_keys(n, edges))

    @property
    def n(self) -> int:
        """Number of nodes (fixed for the buffer's lifetime)."""
        return self._n

    @property
    def keys(self) -> np.ndarray:
        """Sorted packed edge keys of the current snapshot."""
        return self._keys

    @property
    def current(self) -> CSRGraph:
        """The front buffer: the published snapshot."""
        return self._front

    @property
    def previous(self) -> CSRGraph | None:
        """The back buffer: the snapshot before the last delta (if any)."""
        return self._back

    def delta_to(self, target_keys: np.ndarray) -> CSRDelta:
        """Delta from the current snapshot to ``target_keys``."""
        return CSRDelta.between(self._n, self._keys, target_keys)

    def _both_directions(self, keys: np.ndarray) -> np.ndarray:
        """Sorted forward+reverse arc keys of a (small) delta key set."""
        if len(keys) == 0:
            return keys
        u, v = np.divmod(keys, np.int64(self._n))
        arcs = np.concatenate([keys, v * np.int64(self._n) + u])
        arcs.sort()
        return arcs

    def apply(self, delta: CSRDelta) -> CSRGraph:
        """Apply a delta; swaps buffers and returns the new front snapshot.

        Both the canonical edge keys and the symmetric arc keys advance by
        compiled sorted merges sized by the *delta*, so applying k changed
        edges to an m-edge snapshot never re-sorts the m edges.
        """
        arc_delta = CSRDelta(
            self._n,
            add_keys=self._both_directions(delta.add_keys),
            remove_keys=self._both_directions(delta.remove_keys),
        )
        new_keys = delta.apply(self._keys)
        new_arc_keys = arc_delta.apply(self._arc_keys)
        self._back = self._front
        self._front = CSRGraph.from_sorted_arc_keys(self._n, new_arc_keys)
        self._keys = new_keys
        self._arc_keys = new_arc_keys
        return self._front

    def reset(self, keys: np.ndarray) -> CSRGraph:
        """Replace the front snapshot wholesale (full rebuild path)."""
        self._back = self._front
        self._keys = np.asarray(keys, dtype=np.int64)
        self._arc_keys = CSRGraph.symmetrize_sorted_keys(self._n, self._keys)
        self._front = CSRGraph.from_sorted_arc_keys(self._n, self._arc_keys)
        return self._front

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRSnapshotBuffer(n={self._n}, m={len(self._keys)})"
