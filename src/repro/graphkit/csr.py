"""Immutable CSR (compressed sparse row) graph snapshot.

All vectorized kernels in :mod:`repro.graphkit` operate on this structure:
``indptr``/``indices``/``weights`` arrays exactly like ``scipy.sparse.csr_matrix``,
plus cheap conversions to scipy sparse for the linear-algebra-backed
algorithms (eigenvector/Katz/PageRank centrality, Maxent-Stress solves).

Keeping analytics on an immutable snapshot while mutation happens on the
dict-of-dicts :class:`~repro.graphkit.graph.Graph` gives us the
"views, not copies" and cache-locality idioms from the HPC guides: a
snapshot is built once per widget update and then shared by every measure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse

__all__ = ["CSRGraph"]


class CSRGraph:
    """Read-only CSR adjacency.

    Attributes
    ----------
    indptr:
        ``(n+1,)`` int64 row pointers.
    indices:
        ``(nnz,)`` int32 column indices (out-neighbours per row).
    weights:
        ``(nnz,)`` float64 edge weights aligned with ``indices``.
    directed:
        Whether the adjacency is asymmetric.
    """

    __slots__ = ("indptr", "indices", "weights", "directed", "_scipy")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        directed: bool = False,
    ):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        if len(self.indices) != len(self.weights):
            raise ValueError("indices and weights must be aligned")
        self.directed = bool(directed)
        self._scipy: sparse.csr_matrix | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(
        cls, adj: Sequence[dict[int, float]], *, directed: bool = False
    ) -> "CSRGraph":
        """Build from a dict-of-dicts adjacency list."""
        n = len(adj)
        degrees = np.fromiter((len(a) for a in adj), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int32)
        weights = np.empty(nnz, dtype=np.float64)
        pos = 0
        for a in adj:
            k = len(a)
            if k:
                # Sorted neighbours give deterministic traversal order and
                # better cache behaviour for the frontier kernels.
                items = sorted(a.items())
                indices[pos : pos + k] = [v for v, _ in items]
                weights[pos : pos + k] = [w for _, w in items]
                pos += k
        return cls(indptr, indices, weights, directed=directed)

    @classmethod
    def from_edge_array(
        cls,
        n: int,
        edges: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        directed: bool = False,
    ) -> "CSRGraph":
        """Build from an ``(m, 2)`` edge array (symmetrized if undirected)."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        m = len(edges)
        w = (
            np.ones(m, dtype=np.float64)
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        if not directed and m:
            edges = np.vstack([edges, edges[:, ::-1]])
            w = np.concatenate([w, w])
        mat = sparse.csr_matrix(
            (w, (edges[:, 0], edges[:, 1])), shape=(n, n), dtype=np.float64
        )
        mat.sum_duplicates()
        mat.sort_indices()
        return cls(mat.indptr, mat.indices, mat.data, directed=directed)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        """Number of stored directed arcs (2m for undirected graphs)."""
        return len(self.indices)

    @property
    def m(self) -> int:
        """Number of edges (undirected edges counted once)."""
        return self.nnz if self.directed else self.nnz // 2

    def degrees(self) -> np.ndarray:
        """Out-degree vector."""
        return np.diff(self.indptr)

    def weighted_degrees(self) -> np.ndarray:
        """Sum of incident weights per node (strength).

        Implemented as a segmented sum over the CSR value array; empty rows
        (isolated nodes) correctly yield 0.
        """
        if self.nnz == 0:
            return np.zeros(self.n, dtype=np.float64)
        cumulative = np.concatenate([[0.0], np.cumsum(self.weights)])
        return cumulative[self.indptr[1:]] - cumulative[self.indptr[:-1]]

    def neighbors(self, u: int) -> np.ndarray:
        """View of the out-neighbour ids of ``u``."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """View of weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def to_scipy(self) -> sparse.csr_matrix:
        """Zero-copy scipy CSR matrix view of the adjacency (cached)."""
        if self._scipy is None:
            n = self.n
            self._scipy = sparse.csr_matrix(
                (self.weights, self.indices, self.indptr), shape=(n, n)
            )
        return self._scipy

    def expand_frontier(self, frontier: np.ndarray) -> np.ndarray:
        """All out-neighbours of the nodes in ``frontier`` (with repeats).

        The BFS-style kernels gather neighbour ranges with vectorized
        ``reduceat``-free slicing: concatenation of per-node views.  For the
        small frontiers typical of RINs this is allocation-light; for large
        frontiers it amortizes into one big fancy-index gather.
        """
        if len(frontier) == 0:
            return np.empty(0, dtype=np.int32)
        starts = self.indptr[frontier]
        stops = self.indptr[frontier + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int32)
        # Build gather indices: for each frontier node a contiguous range.
        out = np.empty(total, dtype=np.int64)
        offsets = np.zeros(len(frontier) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        # ranges: starts[i] + (0..counts[i])
        idx = np.arange(total, dtype=np.int64)
        seg = np.searchsorted(offsets[1:], idx, side="right")
        out = starts[seg] + (idx - offsets[seg])
        return self.indices[out]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n={self.n}, m={self.m}, directed={self.directed})"
