"""Immutable CSR (compressed sparse row) graph snapshot.

All vectorized kernels in :mod:`repro.graphkit` operate on this structure:
``indptr``/``indices``/``weights`` arrays exactly like ``scipy.sparse.csr_matrix``,
plus cheap conversions to scipy sparse for the linear-algebra-backed
algorithms (eigenvector/Katz/PageRank centrality, Maxent-Stress solves).

Keeping analytics on an immutable snapshot while mutation happens on the
dict-of-dicts :class:`~repro.graphkit.graph.Graph` gives us the
"views, not copies" and cache-locality idioms from the HPC guides: a
snapshot is built once per widget update and then shared by every measure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse

__all__ = ["CSRGraph"]


class CSRGraph:
    """Read-only CSR adjacency.

    Attributes
    ----------
    indptr:
        ``(n+1,)`` int64 row pointers.
    indices:
        ``(nnz,)`` int32 column indices (out-neighbours per row).
    weights:
        ``(nnz,)`` float64 edge weights aligned with ``indices``.
    directed:
        Whether the adjacency is asymmetric.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "directed",
        "_scipy",
        "_pattern",
        "_tails",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        directed: bool = False,
    ):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        if len(self.indices) != len(self.weights):
            raise ValueError("indices and weights must be aligned")
        self.directed = bool(directed)
        self._scipy: sparse.csr_matrix | None = None
        self._pattern: sparse.csr_matrix | None = None
        self._tails: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(
        cls, adj: Sequence[dict[int, float]], *, directed: bool = False
    ) -> "CSRGraph":
        """Build from a dict-of-dicts adjacency list."""
        n = len(adj)
        degrees = np.fromiter((len(a) for a in adj), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int32)
        weights = np.empty(nnz, dtype=np.float64)
        pos = 0
        for a in adj:
            k = len(a)
            if k:
                # Sorted neighbours give deterministic traversal order and
                # better cache behaviour for the frontier kernels.
                items = sorted(a.items())
                indices[pos : pos + k] = [v for v, _ in items]
                weights[pos : pos + k] = [w for _, w in items]
                pos += k
        return cls(indptr, indices, weights, directed=directed)

    @classmethod
    def from_edge_array(
        cls,
        n: int,
        edges: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        directed: bool = False,
    ) -> "CSRGraph":
        """Build from an ``(m, 2)`` edge array (symmetrized if undirected)."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        m = len(edges)
        w = (
            np.ones(m, dtype=np.float64)
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        if not directed and m:
            edges = np.vstack([edges, edges[:, ::-1]])
            w = np.concatenate([w, w])
        mat = sparse.csr_matrix(
            (w, (edges[:, 0], edges[:, 1])), shape=(n, n), dtype=np.float64
        )
        mat.sum_duplicates()
        mat.sort_indices()
        return cls(mat.indptr, mat.indices, mat.data, directed=directed)

    @classmethod
    def from_unique_edge_array(cls, n: int, edges: np.ndarray) -> "CSRGraph":
        """Build an undirected unweighted CSR from *unique* (u < v) pairs.

        The fast path for contact-pair prefixes: one ``lexsort`` over the
        symmetrized arc list plus a ``bincount`` builds the arrays
        directly, skipping scipy's COO validation/dedup machinery (the
        caller guarantees no duplicates and no self-loops).
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        m = len(edges)
        if m == 0:
            return cls(
                np.zeros(n + 1, dtype=np.int64),
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.float64),
            )
        rows = np.concatenate([edges[:, 0], edges[:, 1]])
        cols = np.concatenate([edges[:, 1], edges[:, 0]])
        order = np.lexsort((cols, rows))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return cls(indptr, cols[order], np.ones(2 * m, dtype=np.float64))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        """Number of stored directed arcs (2m for undirected graphs)."""
        return len(self.indices)

    @property
    def m(self) -> int:
        """Number of edges (undirected edges counted once)."""
        return self.nnz if self.directed else self.nnz // 2

    def degrees(self) -> np.ndarray:
        """Out-degree vector."""
        return np.diff(self.indptr)

    def weighted_degrees(self) -> np.ndarray:
        """Sum of incident weights per node (strength).

        Implemented as a segmented sum over the CSR value array; empty rows
        (isolated nodes) correctly yield 0.
        """
        if self.nnz == 0:
            return np.zeros(self.n, dtype=np.float64)
        cumulative = np.concatenate([[0.0], np.cumsum(self.weights)])
        return cumulative[self.indptr[1:]] - cumulative[self.indptr[:-1]]

    def neighbors(self, u: int) -> np.ndarray:
        """View of the out-neighbour ids of ``u``."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """View of weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def to_scipy(self) -> sparse.csr_matrix:
        """Zero-copy scipy CSR matrix view of the adjacency (cached)."""
        if self._scipy is None:
            n = self.n
            self._scipy = sparse.csr_matrix(
                (self.weights, self.indices, self.indptr), shape=(n, n)
            )
        return self._scipy

    def to_scipy_pattern(self) -> sparse.csr_matrix:
        """0/1 structure matrix of the adjacency (cached).

        The batched BFS kernels advance dense frontiers with products
        against this matrix; sharing it across calls means a BFS-heavy
        measure (closeness, APSP) allocates the pattern once per snapshot.
        """
        if self._pattern is None:
            self._pattern = sparse.csr_matrix(
                (np.ones(self.nnz, dtype=np.float64), self.indices, self.indptr),
                shape=(self.n, self.n),
            )
        return self._pattern

    def arc_tails(self) -> np.ndarray:
        """Row id of every stored arc (cached; aligned with ``indices``).

        The transpose-SpMV scatter uses this every power iteration, so it
        is computed once per snapshot rather than per call.
        """
        if self._tails is None:
            self._tails = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(self.indptr)
            )
        return self._tails

    def arc_gather(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flat storage positions of every arc leaving ``rows``.

        Returns ``(gather, counts)``: ``indices[gather]`` / ``weights[gather]``
        enumerate the rows' arcs contiguously and ``counts`` holds per-row
        out-degrees. Built as one shifted ``arange`` (``starts[i] + 0..k_i``
        per segment) — a single ``repeat`` instead of per-node slicing.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), counts
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        gather = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)
        return gather, counts

    def expand_frontier(self, frontier: np.ndarray) -> np.ndarray:
        """All out-neighbours of the nodes in ``frontier`` (with repeats)."""
        frontier = np.asarray(frontier, dtype=np.int64)
        gather, _ = self.arc_gather(frontier)
        if len(gather) == 0:
            return np.empty(0, dtype=np.int32)
        return self.indices[gather]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n={self.n}, m={self.m}, directed={self.directed})"
