"""Algebraic graph views: adjacency, Laplacians, spectra.

Thin, explicit wrappers over the CSR snapshot for workflows that leave
the provided algorithms and go straight to linear algebra (the paper's
"integrated into analysis pipelines" promise).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as splinalg

from .csr import CSRGraph
from .graph import Graph

__all__ = [
    "adjacency_matrix",
    "laplacian",
    "normalized_laplacian",
    "algebraic_connectivity",
    "spectral_radius",
]


def _csr(g: Graph | CSRGraph) -> CSRGraph:
    return g.csr() if isinstance(g, Graph) else g


def adjacency_matrix(g: Graph | CSRGraph) -> sparse.csr_matrix:
    """The (weighted) adjacency matrix as scipy CSR."""
    return _csr(g).to_scipy().copy()


def laplacian(g: Graph | CSRGraph) -> sparse.csr_matrix:
    """Combinatorial Laplacian ``L = D − A``."""
    adj = _csr(g).to_scipy()
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    return (sparse.diags(degrees) - adj).tocsr()


def normalized_laplacian(g: Graph | CSRGraph) -> sparse.csr_matrix:
    """Symmetric normalized Laplacian ``I − D^{-1/2} A D^{-1/2}``.

    Isolated nodes contribute a zero row/column (their degree pseudo-
    inverse is 0), matching the standard convention.
    """
    adj = _csr(g).to_scipy()
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    nz = degrees > 0
    inv_sqrt[nz] = 1.0 / np.sqrt(degrees[nz])
    d = sparse.diags(inv_sqrt)
    n = adj.shape[0]
    eye = sparse.diags(np.where(nz, 1.0, 0.0))
    return (eye - d @ adj @ d).tocsr()


def algebraic_connectivity(g: Graph | CSRGraph) -> float:
    """Second-smallest Laplacian eigenvalue (Fiedler value).

    Zero iff the graph is disconnected — the spectral version of the
    §IV connected-components-vs-cutoff observation.
    """
    csr = _csr(g)
    n = csr.n
    if n < 2:
        return 0.0
    lap = laplacian(csr)
    if n <= 16:
        vals = np.linalg.eigvalsh(lap.toarray())
    else:
        try:
            vals, _ = splinalg.eigsh(lap.tocsc(), k=2, sigma=-1e-9, which="LM")
        except Exception:
            vals = np.linalg.eigvalsh(lap.toarray())
    vals = np.sort(vals)
    return float(max(vals[1], 0.0))


def spectral_radius(g: Graph | CSRGraph) -> float:
    """Largest adjacency eigenvalue (governs Katz α bounds)."""
    csr = _csr(g)
    n = csr.n
    if n == 0 or csr.nnz == 0:
        return 0.0
    adj = csr.to_scipy()
    if n <= 16:
        return float(np.max(np.abs(np.linalg.eigvalsh(adj.toarray()))))
    vals, _ = splinalg.eigsh(adj.tocsc(), k=1, which="LA",
                             v0=np.ones(n) / np.sqrt(n))
    return float(vals[0])
