"""k-core decomposition and local clustering coefficients.

Standard companions of RIN hub analysis (§IV's literature: hub counts and
connectivity change drastically with the cut-off): coreness identifies the
densely packed protein core, clustering coefficients quantify local
contact cliquishness.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph
from .graph import Graph
from .kernels import core_numbers

__all__ = ["core_decomposition", "CoreDecomposition", "local_clustering"]


def core_decomposition(g: Graph | CSRGraph, *, impl: str = "vectorized") -> np.ndarray:
    """Per-node coreness.

    ``impl="vectorized"`` (default) runs the bulk-peeling kernel
    (:func:`~repro.graphkit.kernels.core_numbers`): whole degree-floor
    waves removed per step with bincount degree updates.
    ``impl="reference"`` keeps the scalar Batagelj-Zaveršnik bucket
    queue — O(n + m), one minimum-degree node at a time — for
    differential testing.
    """
    if impl not in ("vectorized", "reference"):
        raise ValueError(f"impl must be 'vectorized' or 'reference', got {impl!r}")
    csr = g.csr() if isinstance(g, Graph) else g
    if impl == "vectorized":
        return core_numbers(csr)
    n = csr.n
    degrees = csr.degrees().astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core
    max_deg = int(degrees.max())
    # Degree buckets with lazy deletion: stale entries (whose degree has
    # since dropped) are discarded when popped. The peeling floor never
    # decreases because neighbours only ever decrement to >= floor.
    bins: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for u in range(n):
        bins[degrees[u]].append(u)
    removed = np.zeros(n, dtype=bool)
    floor = 0
    for _ in range(n):
        u = -1
        while floor <= max_deg:
            while bins[floor]:
                candidate = bins[floor].pop()
                if not removed[candidate] and degrees[candidate] == floor:
                    u = candidate
                    break
            if u >= 0:
                break
            floor += 1
        assert u >= 0, "peeling must find a node each round"
        removed[u] = True
        core[u] = floor
        for v in csr.neighbors(u):
            v = int(v)
            if not removed[v] and degrees[v] > floor:
                degrees[v] -= 1
                bins[degrees[v]].append(v)
    return core


class CoreDecomposition:
    """NetworKit-style runner around :func:`core_decomposition`."""

    def __init__(self, g: Graph | CSRGraph, *, impl: str = "vectorized"):
        self._g = g
        self._impl = impl
        self._core: np.ndarray | None = None

    def run(self) -> "CoreDecomposition":
        """Compute core numbers."""
        self._core = core_decomposition(self._g, impl=self._impl)
        return self

    def scores(self) -> list[int]:
        """Per-node core numbers."""
        if self._core is None:
            raise RuntimeError("call run() first")
        return self._core.tolist()

    def max_core_number(self) -> int:
        """Degeneracy of the graph."""
        if self._core is None:
            raise RuntimeError("call run() first")
        return int(self._core.max()) if len(self._core) else 0

    def core_members(self, k: int) -> np.ndarray:
        """Nodes in the k-core (coreness >= k)."""
        if self._core is None:
            raise RuntimeError("call run() first")
        return np.flatnonzero(self._core >= k).astype(np.int64)


def local_clustering(g: Graph | CSRGraph) -> np.ndarray:
    """Local clustering coefficient per node.

    Triangle counting through sparse matrix products on the CSR snapshot
    (A² masked by A), fully vectorized.
    """
    csr = g.csr() if isinstance(g, Graph) else g
    n = csr.n
    if n == 0:
        return np.zeros(0)
    if n <= 256:
        # Dense fast path: at RIN scale one BLAS GEMM beats the sparse
        # product's constructor overhead by an order of magnitude. The
        # counts are exact small integers either way, so the coefficients
        # are bit-identical to the sparse path.
        dense = np.zeros((n, n))
        dense[csr.arc_tails(), csr.indices] = 1.0
        triangles = ((dense @ dense) * dense).sum(axis=1) / 2.0
    else:
        adj = csr.to_scipy_pattern()  # unweighted triangles (cached 0/1 matrix)
        # triangles_u = (A @ A)[u, v] summed over neighbours v of u, / 2.
        paths2 = (adj @ adj).multiply(adj)
        triangles = np.asarray(paths2.sum(axis=1)).ravel() / 2.0
    degrees = csr.degrees().astype(np.float64)
    possible = degrees * (degrees - 1) / 2.0
    out = np.zeros(n)
    mask = possible > 0
    out[mask] = triangles[mask] / possible[mask]
    return out
