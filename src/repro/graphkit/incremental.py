"""Delta-aware incremental measure engine over CSR snapshots.

The interactive pipeline's biggest remaining per-event cost (after the
sharded scans and the batched kernels) was recomputing *descriptors* —
degree, weighted degree, core numbers, connected components — from
scratch on every snapshot, even when a slider move changed a handful of
edges. :class:`IncrementalMeasures` maintains all four across
:class:`~repro.graphkit.csr.CSRDelta` applies:

* **degree / weighted degree** — one ``bincount`` over the delta's
  endpoints per apply (always incremental);
* **connected components** — insertions fold through the
  :class:`~repro.graphkit.components.IncrementalUnionFind` batch union,
  removals run its bounded re-scan of the affected components (always
  incremental, vectorized either way);
* **core numbers** — traversal-bounded repair along the delta's edges
  (the classic streaming k-core result: one edge changes any core number
  by at most 1, and only inside the touched subcore), falling back to
  the vectorized full peel (:func:`~repro.graphkit.kernels.core_numbers`)
  when the delta is large enough that per-edge repair would lose.

**Maintained-state contract.** Every read
(:meth:`~IncrementalMeasures.degrees`,
:meth:`~IncrementalMeasures.core_numbers`, ...) is **bit-identical** to
the full-recompute twin (:func:`full_measures`) on the same snapshot,
for any sequence of deltas and regardless of which internal path (repair
or forced full recompute) an apply took. Degree and coreness are exact
integer maintenance; weighted degree only ever adds/subtracts exact
small floats; component labels are canonical (smallest member node id),
a pure function of the edge set. That purity is what lets the sharded
scan split a sweep at any prefix boundary and stay bit-identical.

Arrays returned by reads are immutable views that are never mutated in
place — an apply rebinds fresh arrays — so a caller may hold a read
across later applies and keep a consistent snapshot of *that* state.

See ``docs/ARCHITECTURE.md`` (*The incremental measure engine*) for the
invalidation rules and when a full recompute is forced.
"""

from __future__ import annotations

import numpy as np

from .components import IncrementalUnionFind, connected_components
from .csr import CSRDelta, CSRGraph
from .kernels import core_numbers

__all__ = [
    "IncrementalMeasures",
    "canonical_components",
    "full_measures",
]


def _empty_csr(n: int) -> CSRGraph:
    return CSRGraph(
        np.zeros(n + 1, dtype=np.int64),
        np.empty(0, dtype=np.int32),
        np.empty(0, dtype=np.float64),
    )


def _frozen(arr: np.ndarray) -> np.ndarray:
    view = arr.view()
    view.flags.writeable = False
    return view


def canonical_components(g: CSRGraph) -> tuple[int, np.ndarray]:
    """Component count and canonical labels (smallest member node id).

    The full-recompute twin of the engine's maintained component state:
    scipy's compiled union-find, relabelled so every component is named
    by its smallest node. scipy assigns labels in first-occurrence order,
    so the first node carrying a label *is* the component's minimum — one
    ``unique`` pass canonicalizes.
    """
    count, raw = connected_components(g)
    if count == 0:
        return 0, np.empty(0, dtype=np.int64)
    _, first = np.unique(raw, return_index=True)
    return count, first[raw].astype(np.int64)


def full_measures(g: CSRGraph) -> dict[str, np.ndarray | int]:
    """All maintained quantities recomputed from scratch on one snapshot.

    The ``impl="full"`` twin every incremental read is pinned against:
    ``degrees`` / ``weighted_degrees`` straight off the CSR arrays,
    ``core_numbers`` via the vectorized bulk peel, ``components`` via
    :func:`canonical_components`.
    """
    count, labels = canonical_components(g)
    return {
        "degrees": g.degrees().astype(np.int64),
        "weighted_degrees": g.weighted_degrees(),
        "core_numbers": core_numbers(g),
        "component_count": count,
        "component_labels": labels,
    }


class IncrementalMeasures:
    """Maintained degree/coreness/component state across CSR deltas.

    Parameters
    ----------
    n:
        Number of nodes (fixed for the engine's lifetime).
    csr:
        Optional initial snapshot to seed from (default: empty graph).
        Must be unit-weight — deltas carry no weights, so the engine
        maintains strengths as ±1.0 per incident edge.
    repair_threshold:
        Deltas touching at most this many edges repair core numbers by
        bounded traversal; larger deltas force the vectorized full peel
        (``None`` = auto: ``max(8, n // 16)``). Degree and component
        maintenance are vectorized and never fall back. The threshold
        only picks the cheaper *path* — results are bit-identical either
        way.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graphkit.csr import CSRDelta, CSRSnapshotBuffer, pack_edge_keys
    >>> buf = CSRSnapshotBuffer(4)
    >>> eng = IncrementalMeasures(4)
    >>> delta = CSRDelta(4, pack_edge_keys(4, [(0, 1), (1, 2), (0, 2)]),
    ...                  np.empty(0, dtype=np.int64))
    >>> eng.apply(delta, buf.apply(delta))
    >>> eng.core_numbers().tolist(), eng.component_count
    ([2, 2, 2, 0], 2)
    """

    __slots__ = (
        "_n",
        "_repair_threshold",
        "_csr",
        "_deg",
        "_wdeg",
        "_core",
        "_uf",
        "_adj",
    )

    def __init__(
        self,
        n: int,
        csr: CSRGraph | None = None,
        *,
        repair_threshold: int | None = None,
    ):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._n = int(n)
        self._repair_threshold = (
            max(8, self._n // 16) if repair_threshold is None else int(repair_threshold)
        )
        self.seed(_empty_csr(self._n) if csr is None else csr)

    # ------------------------------------------------------------------
    # seeding / full recompute
    # ------------------------------------------------------------------
    def seed(self, csr: CSRGraph) -> None:
        """(Re)initialize every maintained quantity from a snapshot.

        This is the forced-full-recompute path: it runs the exact twins
        of :func:`full_measures` and drops the traversal adjacency (which
        rebuilds lazily on the next bounded repair).

        Snapshots must be **unit-weight**: a :class:`CSRDelta` carries no
        weights, so maintained strengths shift by ±1.0 per incident edge
        — seeding with arbitrary weights would silently diverge from the
        :func:`full_measures` twin, hence the explicit check here.
        """
        if csr.n != self._n:
            raise ValueError(f"snapshot has {csr.n} nodes, engine has {self._n}")
        if csr.nnz and not (csr.weights == 1.0).all():
            raise ValueError(
                "IncrementalMeasures maintains unit-weight snapshots only "
                "(CSRDelta carries no weights)"
            )
        self._csr = csr
        self._deg = csr.degrees().astype(np.int64)
        self._wdeg = csr.weighted_degrees()
        self._core = core_numbers(csr)
        count, labels = canonical_components(csr)
        self._uf = IncrementalUnionFind(self._n)
        if self._n:
            self._uf.seed(labels, count)
        self._adj = None

    # ------------------------------------------------------------------
    # reads (immutable views; applies rebind, never mutate in place)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def csr(self) -> CSRGraph:
        """The snapshot the maintained state currently reflects."""
        return self._csr

    @property
    def repair_threshold(self) -> int:
        """Max delta size repaired by bounded traversal (else full peel)."""
        return self._repair_threshold

    def degrees(self) -> np.ndarray:
        """Maintained per-node degree (int64, read-only view)."""
        return _frozen(self._deg)

    def weighted_degrees(self) -> np.ndarray:
        """Maintained per-node strength (float64, read-only view)."""
        return _frozen(self._wdeg)

    def core_numbers(self) -> np.ndarray:
        """Maintained per-node coreness (int64, read-only view)."""
        return _frozen(self._core)

    def max_core_number(self) -> int:
        """Degeneracy of the current graph."""
        return int(self._core.max()) if self._n else 0

    @property
    def component_count(self) -> int:
        """Maintained number of connected components."""
        return self._uf.count

    def component_labels(self) -> np.ndarray:
        """Maintained canonical component labels (read-only view)."""
        return self._uf.labels

    # ------------------------------------------------------------------
    # the delta entry point
    # ------------------------------------------------------------------
    def apply(self, delta: CSRDelta, csr: CSRGraph) -> None:
        """Advance the maintained state across one delta.

        ``csr`` must be the post-delta snapshot (what
        :meth:`~repro.graphkit.csr.CSRSnapshotBuffer.apply` returned for
        the same delta) — the engine reads it for the components re-scan
        and keeps it as the state's snapshot of record.
        """
        if delta.n != self._n or csr.n != self._n:
            raise ValueError("delta/snapshot node count does not match the engine")
        if delta.total == 0:
            self._csr = csr
            return
        added, removed = delta.edges()

        # Degrees: one bincount per direction, always incremental.
        deg_shift = np.zeros(self._n, dtype=np.int64)
        if len(added):
            deg_shift += np.bincount(added.ravel(), minlength=self._n)
        if len(removed):
            deg_shift -= np.bincount(removed.ravel(), minlength=self._n)
        self._deg = self._deg + deg_shift
        self._wdeg = self._wdeg + deg_shift.astype(np.float64)

        # Components: removals re-scan the affected components (bounded,
        # vectorized), insertions fold through the batch union — both on
        # canonical labels, so the result is a pure function of the edge
        # set.
        if len(removed):
            self._uf.remove_edges(removed, csr)
        if len(added):
            self._uf.union_edges(added)

        # Core numbers: bounded per-edge repair for small deltas, the
        # vectorized full peel otherwise. Both are exact, so the policy
        # is invisible in results. A repair that starts touching too much
        # of the graph (dense regions where a candidate walk approaches
        # peel cost) also bails out to the peel mid-batch.
        if delta.total > self._repair_threshold:
            self._core = core_numbers(csr)
            self._adj = None  # rebuilt lazily on the next bounded repair
        elif not self._repair_cores(removed, added):
            # Aborted mid-batch: the adjacency mirror was still advanced
            # to the post-delta state, only the core repair is redone.
            self._core = core_numbers(csr)
        self._csr = csr

    # ------------------------------------------------------------------
    # traversal-bounded k-core repair (streaming k-core maintenance)
    # ------------------------------------------------------------------
    def _ensure_adj(self) -> list[set[int]]:
        """Set-of-neighbours mirror of the *pre-delta* snapshot (lazy).

        Only materialized when a bounded repair actually runs: scans with
        large per-step deltas keep taking the full-peel path and never
        pay the O(m) build.
        """
        if self._adj is None:
            csr = self._csr
            self._adj = [
                set(csr.neighbors(u).tolist()) for u in range(self._n)
            ]
        return self._adj

    def _repair_cores(self, removed: np.ndarray, added: np.ndarray) -> bool:
        """Per-edge core repair; False = aborted (caller must full-peel).

        The abort budget bounds how much of the graph one batch may walk:
        once a repair's candidate exploration crosses it, finishing with
        the vectorized peel is cheaper than continuing edge by edge. The
        adjacency mirror is always advanced to the post-delta state so a
        later bounded repair can pick up where this batch left off.
        """
        adj = self._ensure_adj()
        core = self._core.tolist()
        budget = max(64, 4 * self._repair_threshold)
        aborted = False
        for u, v in removed.tolist():
            adj[u].discard(v)
            adj[v].discard(u)
            if not aborted:
                self._repair_removal(core, adj, u, v)
        for u, v in added.tolist():
            adj[u].add(v)
            adj[v].add(u)
            if not aborted:
                aborted = not self._repair_insertion(core, adj, u, v, budget)
        if not aborted:
            self._core = np.asarray(core, dtype=np.int64)
        return not aborted

    @staticmethod
    def _repair_insertion(
        core: list[int], adj: list[set[int]], u: int, v: int, budget: int
    ) -> bool:
        """Repair after inserting ``(u, v)`` (edge already in ``adj``).

        One insertion raises core numbers by at most 1, and only inside
        the *purecore* of the lower endpoint: promoted vertices form a
        connected set through the inserted edge, and a vertex can only
        be promoted if its support — neighbours of coreness ``>= k``,
        ``k = min(core[u], core[v])`` — exceeds ``k``. So the walk
        collects coreness-``k`` vertices reachable from the root through
        vertices satisfying that support bound (non-promotable vertices
        cannot carry promotion), then runs the classic eviction loop on
        candidate degrees (neighbours already above ``k`` plus surviving
        candidates); survivors rise to ``k + 1``.

        Returns False — leaving ``core`` untouched — when the candidate
        walk sees more than ``budget`` vertices: the caller then finishes
        the batch with the vectorized full peel instead.
        """
        k = min(core[u], core[v])
        root = u if core[u] <= core[v] else v

        def support_exceeds_k(x: int) -> bool:
            s = 0
            for y in adj[x]:
                if core[y] >= k:
                    s += 1
                    if s > k:
                        return True
            return False

        candidates = {root}
        seen = {root}
        stack = [root]
        while stack:
            for w in adj[stack.pop()]:
                if core[w] == k and w not in seen:
                    seen.add(w)
                    if support_exceeds_k(w):
                        candidates.add(w)
                        stack.append(w)
            if len(seen) > budget:
                return False
        cd = {}
        evict = []
        for x in candidates:
            c = 0
            for w in adj[x]:
                if core[w] > k or w in candidates:
                    c += 1
            cd[x] = c
            if c <= k:
                evict.append(x)
        while evict:
            x = evict.pop()
            if x not in candidates:
                continue
            candidates.discard(x)
            for w in adj[x]:
                if w in candidates:
                    cd[w] -= 1
                    if cd[w] <= k:
                        evict.append(w)
        for x in candidates:
            core[x] = k + 1
        return True

    @staticmethod
    def _repair_removal(
        core: list[int], adj: list[set[int]], u: int, v: int
    ) -> None:
        """Repair after removing ``(u, v)`` (edge already gone from ``adj``).

        One removal lowers core numbers by at most 1, and only for
        coreness-``k`` nodes (``k`` the smaller endpoint coreness): a
        cascade drops every such node whose support — neighbours of
        coreness ``>= k`` — has fallen below ``k``. Support counts are
        computed lazily on first touch against the *current* core
        values, so each drop decrements exactly the counts that included
        the dropped node.
        """
        k = min(core[u], core[v])
        cd: dict[int, int] = {}
        queue = []
        for x in (u, v):
            if core[x] == k and x not in cd:
                cd[x] = sum(1 for w in adj[x] if core[w] >= k)
                if cd[x] < k:
                    queue.append(x)
        while queue:
            x = queue.pop()
            if core[x] != k:
                continue
            core[x] = k - 1
            for w in adj[x]:
                if core[w] != k:
                    continue
                if w not in cd:
                    # Fresh count taken after x's drop: x is already
                    # excluded, so no decrement for this drop.
                    cd[w] = sum(1 for y in adj[w] if core[y] >= k)
                else:
                    cd[w] -= 1
                if cd[w] < k:
                    queue.append(w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalMeasures(n={self._n}, m={self._csr.m}, "
            f"components={self.component_count}, "
            f"degeneracy={self.max_core_number()})"
        )
