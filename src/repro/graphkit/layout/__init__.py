"""Graph drawing algorithms (NetworKit ``viz`` module analog)."""

from .fruchterman_reingold import FruchtermanReingold, fruchterman_reingold_layout
from .maxent_stress import MaxentStress, maxent_stress_layout
from .spectral import spectral_layout

__all__ = [
    "MaxentStress",
    "maxent_stress_layout",
    "FruchtermanReingold",
    "fruchterman_reingold_layout",
    "spectral_layout",
]
