"""Graph drawing algorithms (NetworKit ``viz`` module analog)."""

from .bhtree import (
    BarnesHutTree,
    barnes_hut_repulsion,
    exact_repulsion,
    force_error_bound,
)
from .fruchterman_reingold import FruchtermanReingold, fruchterman_reingold_layout
from .maxent_stress import (
    BARNES_HUT_THRESHOLD,
    MaxentStress,
    maxent_stress_layout,
    maxent_stress_value,
)
from .spectral import spectral_layout

__all__ = [
    "MaxentStress",
    "maxent_stress_layout",
    "maxent_stress_value",
    "BARNES_HUT_THRESHOLD",
    "BarnesHutTree",
    "barnes_hut_repulsion",
    "exact_repulsion",
    "force_error_bound",
    "FruchtermanReingold",
    "fruchterman_reingold_layout",
    "spectral_layout",
]
