"""Barnes-Hut far-field approximation of the layout repulsion kernel.

The Maxent-Stress entropy term needs, per node, the aggregate repulsion

.. math::

    f_i = \\sum_{j \\ne i} \\frac{x_i - x_j}{\\lVert x_i - x_j \\rVert^2}

(the gradient of :math:`-\\sum \\ln \\lVert x_i - x_j \\rVert`), which is
O(n²) evaluated exactly — the wall the 50k-node layout sweep hits. The
classic escape (Barnes & Hut 1986; NetworKit's maxent solver uses the
closely related well-separated pair decomposition) is hierarchical: group
far-away points into tree cells and replace each far cell's points by a
single monopole at the cell's center of mass.

This implementation is shaped for NumPy rather than pointer-chasing:

* **Build** — one :func:`~repro.graphkit.kernels.morton_codes` pass plus
  an argsort puts the points in Z-order; every cell of the implied
  quad/octree is then a *contiguous run* of the sorted order, so each
  refinement level's cell table (run starts, masses, centers of mass) is
  one ``np.add.reduceat`` over the sorted positions. No nodes, no
  pointers — ~``bits`` vectorized passes total.
* **Evaluate** — queries are processed in blocks of consecutive Z-order
  points (spatially coherent by construction). Per block the tree is
  descended level by level: a candidate cell is **far** when even the
  block's bounding box sees its *measured* spread under the opening
  angle (``2 * cell_radius < theta * dist(box, cell_com)``, with
  ``cell_radius`` the max distance of the cell's points from their
  center of mass) — then its monopole contribution is accumulated for
  the whole block in one broadcast — otherwise it is opened into its
  children. Small cells and whatever survives to the deepest level are
  evaluated *exactly* over their points. Because the far gate uses the
  distance from the whole block's box, every accepted cell satisfies the
  classic per-point Barnes-Hut criterion for **every** query in the
  block, so the approximation error is bounded by the textbook
  single-query bound. Gating on measured spreads (never on quantized
  cell geometry) is also what lets the build clamp outliers into an
  outlier-robust quantization frame without touching correctness: a
  blown-up mid-anneal embedding keeps its grid resolution over the bulk
  of the points, and a boundary cell full of clamped outliers reports
  its true radius.

The error contract (:func:`force_error_bound`) is what the differential
test suite pins: for any point set, the *global relative error*
``‖approx - exact‖_F / ‖exact‖_F`` versus :func:`exact_repulsion` stays
below the theta-parameterized bound, and shrinks monotonically as theta
tightens. (Per-node relative error is the wrong contract: on degenerate
sets — e.g. collinear points — opposing forces cancel and individual
denominators vanish, while the global force field stays well
approximated.)
"""

from __future__ import annotations

import numpy as np

from ..kernels import DENSE_BLOCK_ENTRIES, morton_codes

__all__ = [
    "BarnesHutTree",
    "exact_repulsion",
    "barnes_hut_repulsion",
    "force_error_bound",
]

#: Squared-distance clamp shared with the exact reference so coincident
#: points contribute zero force in both engines (same semantics as the
#: sampled estimator in :mod:`~repro.graphkit.layout.maxent_stress`).
EPS2 = 1e-9


def force_error_bound(theta: float) -> float:
    """The tested contract: global relative force error allowed at ``theta``.

    "Global relative error" is ``‖approx - exact‖_F / ‖exact‖_F`` over
    the whole ``(n, dim)`` force field. A far cell of measured point
    spread ``s = 2 * radius`` at distance ``d`` passes the gate only
    when ``s/d < theta``, so the quadrupole-and-higher truncation error
    of its monopole is O((s/d)²) = O(theta²) per accepted cell, and
    errors of independent cells partially cancel in the sum. The constant absorbs the worst
    clustering the differential suite throws at the tree (protein,
    uniform, clustered, collinear-degenerate point sets — measured worst
    case ≈ 0.035 at theta=1.2, against a bound of 0.144); the
    differential tests additionally require the *measured* error to
    decrease monotonically as theta tightens.
    """
    if theta <= 0:
        raise ValueError(f"theta must be > 0, got {theta}")
    return 0.1 * float(theta) ** 2


def _robust_frame(pts: np.ndarray) -> dict:
    """An outlier-robust quantization frame for :func:`morton_codes`.

    A handful of far-flung points — blown-up embeddings mid-anneal
    produce them — must not swallow the whole grid resolution: with the
    plain bounding cube, one outlier at 1000x the bulk's scale collapses
    the bulk into a few giant cells and the near field degenerates
    toward O(n²). The frame instead covers the padded 1st..99th
    percentile box; whatever lies outside clamps into boundary cells.
    Clamping never breaks the error contract because every far-gate
    quantity (center of mass, cell radius, block boxes) is measured from
    the true coordinates, not the quantized geometry.
    """
    if len(pts) == 0:
        return {}
    lo = np.quantile(pts, 0.01, axis=0)
    hi = np.quantile(pts, 0.99, axis=0)
    span = float((hi - lo).max())
    full_lo = pts.min(axis=0)
    full_span = float((pts.max(axis=0) - full_lo).max())
    if not span > 0.0 or full_span <= 2.0 * span:
        # No outlier regime worth trimming (or a degenerate set): the
        # exact bounding cube keeps morton_codes' default semantics.
        return {}
    pad = 0.05 * span
    return {"origin": lo - pad, "extent": span + 2.0 * pad}


def _multi_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s + l)`` runs, fully vectorized."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, lengths)
        + np.repeat(starts, lengths)
    )


def exact_repulsion(
    points: np.ndarray, *, block_size: int = 1024
) -> np.ndarray:
    """The O(n²) reference: per-node sum of ``(x_i - x_j) / |x_i - x_j|²``.

    Evaluated in row blocks so peak memory stays O(block × n). Self-pairs
    (and coincident points) contribute zero — the numerator vanishes and
    the squared distance is clamped to :data:`EPS2`.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    out = np.zeros_like(pts)
    for lo in range(0, n, max(1, block_size)):
        hi = min(n, lo + block_size)
        diff = pts[lo:hi, None, :] - pts[None, :, :]  # (B, n, dim)
        r2 = np.einsum("ijk,ijk->ij", diff, diff)
        np.maximum(r2, EPS2, out=r2)
        out[lo:hi] = (diff / r2[:, :, None]).sum(axis=1)
    return out


class _Level:
    """One refinement level's cell table (all arrays cell-aligned)."""

    __slots__ = ("codes", "starts", "counts", "com", "width", "radius")

    def __init__(self, codes, starts, counts, com, width, radius):
        self.codes = codes  # unique level codes, ascending
        self.starts = starts  # run start of each cell in the sorted order
        self.counts = counts  # points per cell (the cell's mass)
        self.com = com  # (n_cells, dim) centers of mass
        self.width = width  # cell edge length at this level
        self.radius = radius  # measured max |point - com| per cell


class BarnesHutTree:
    """Morton-order quad/octree over a point set, built fully vectorized.

    Parameters
    ----------
    points:
        ``(n, dim)`` coordinates, any ``dim >= 1`` (2 and 3 in practice).
    bits:
        Grid resolution per axis (``2**bits`` cells at the deepest
        level); also the maximum tree depth. ``bits * dim`` must fit an
        int64 (≤ 62).

    The tree is immutable — the layout solver rebuilds it each sweep
    (one argsort plus ~``bits`` reduceat passes, far cheaper than the
    evaluation it accelerates).
    """

    def __init__(self, points: np.ndarray, *, bits: int = 10):
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] < 1:
            raise ValueError(f"points must be (n, dim), got shape {pts.shape}")
        self._n, self._dim = pts.shape
        codes, extent, origin = morton_codes(
            pts, bits=bits, **_robust_frame(pts)
        )
        self._bits = bits
        self._extent = extent
        self._origin = origin
        self._order = np.argsort(codes, kind="stable")
        self._inverse = np.empty_like(self._order)
        self._inverse[self._order] = np.arange(self._n, dtype=np.int64)
        self._sorted_codes = codes[self._order]
        self._sorted_points = np.ascontiguousarray(pts[self._order])
        self._levels: list[_Level] = []
        n, dim = self._n, self._dim
        for level in range(bits + 1):
            shift = dim * (bits - level)
            lc = self._sorted_codes >> shift
            if n:
                starts = np.flatnonzero(
                    np.concatenate([[True], lc[1:] != lc[:-1]])
                )
            else:
                starts = np.empty(0, dtype=np.int64)
            counts = np.diff(np.concatenate([starts, [n]]))
            if n:
                sums = np.add.reduceat(self._sorted_points, starts, axis=0)
            else:
                sums = np.zeros((0, dim))
            com = sums / np.maximum(counts, 1)[:, None]
            if n:
                # Measured spread: max |point - com| per cell. The far
                # gate reads this, never the quantized cell geometry, so
                # clamped outliers can't fake a compact cell.
                spread = self._sorted_points - np.repeat(com, counts, axis=0)
                d = np.sqrt(np.einsum("ij,ij->i", spread, spread))
                radius = np.maximum.reduceat(d, starts)
            else:
                radius = np.empty(0)
            self._levels.append(
                _Level(
                    lc[starts], starts, counts, com,
                    extent / 2.0**level, radius,
                )
            )
            if len(starts) == n:  # every cell a singleton: no deeper splits
                break

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of indexed points."""
        return self._n

    @property
    def dim(self) -> int:
        """Point dimensionality."""
        return self._dim

    @property
    def n_levels(self) -> int:
        """Materialized refinement levels (root level included)."""
        return len(self._levels)

    @property
    def extent(self) -> float:
        """Edge length of the bounding cube (root cell width)."""
        return self._extent

    @property
    def origin(self) -> np.ndarray:
        """Lower corner of the bounding cube."""
        return self._origin

    @property
    def order(self) -> np.ndarray:
        """Permutation sorting the input points into Z-order."""
        return self._order

    def level_cells(
        self, level: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cell table of one level: ``(codes, starts, masses, coms)``.

        ``starts`` indexes the Z-ordered points (:attr:`order`): cell
        ``i`` owns sorted positions ``starts[i] : starts[i] + masses[i]``
        — contiguous runs that partition the point set at every level.
        """
        lev = self._levels[level]
        return lev.codes, lev.starts, lev.counts, lev.com

    def cell_width(self, level: int) -> float:
        """Cell edge length at ``level`` (``extent / 2**level``)."""
        return self._levels[level].width

    def point_cells(self, level: int) -> np.ndarray:
        """Per *input* point: index of its cell at ``level``."""
        lev = self._levels[level]
        cell_of_sorted = np.repeat(
            np.arange(len(lev.starts), dtype=np.int64), lev.counts
        )
        return cell_of_sorted[self._inverse]

    # ------------------------------------------------------------------
    def _query_blocks(self, cap: int) -> list[tuple[int, int]]:
        """Partition the Z-order into per-cell query blocks of ≤ cap points.

        Picks the *shallowest* cell on every root-to-leaf path whose
        occupancy fits the cap (deepest-level cells are taken regardless
        — coincident points can exceed any cap). Query blocks are tree
        cells, so their bounding boxes are compact cubes — the property
        that keeps the block-level far gate sharp; a fixed-size slice of
        the Z-order can straddle a curve jump and span half the domain.
        """
        levels = self._levels
        deepest = len(levels) - 1
        if deepest == 0 or levels[0].counts[0] <= cap:
            return [(0, self._n)]
        starts: list[np.ndarray] = []
        counts: list[np.ndarray] = []
        for level in range(1, deepest + 1):
            lev, parent = levels[level], levels[level - 1]
            pidx = np.searchsorted(parent.codes, lev.codes >> self._dim)
            deep_enough = parent.counts[pidx] > cap
            take = deep_enough & (
                (lev.counts <= cap) if level < deepest else True
            )
            starts.append(lev.starts[take])
            counts.append(lev.counts[take])
        start = np.concatenate(starts)
        count = np.concatenate(counts)
        order = np.argsort(start, kind="stable")
        return list(zip(start[order].tolist(), (start + count)[order].tolist()))

    def repulsion(
        self,
        theta: float = 0.8,
        *,
        block_size: int = 512,
        leaf_cap: int = 16,
        chunk_entries: int = DENSE_BLOCK_ENTRIES,
    ) -> np.ndarray:
        """Theta-gated approximate repulsion forces, ``(n, dim)``.

        ``theta`` is the opening angle: smaller is more accurate and more
        expensive (``theta → 0`` degenerates to the exact sum). Cells
        holding ``<= leaf_cap`` points skip the monopole approximation
        entirely and are evaluated exactly, as is anything still open at
        the deepest level. ``block_size`` caps the points per query block
        (blocks are tree cells, see :meth:`_query_blocks`) and trades
        broadcast width against gate sharpness; ``chunk_entries`` caps
        the ``block × cells`` broadcast temporaries.
        """
        if theta <= 0:
            raise ValueError(f"theta must be > 0, got {theta}")
        n, dim = self._n, self._dim
        out = np.zeros((n, dim))
        if n <= 1:
            return out
        sp = self._sorted_points
        levels = self._levels
        deepest = len(levels) - 1
        for lo, hi in self._query_blocks(max(1, block_size)):
            q = sp[lo:hi]  # (B, dim)
            box_lo = q.min(axis=0)
            box_hi = q.max(axis=0)
            acc = np.zeros((hi - lo, dim))
            exact_starts: list[np.ndarray] = []
            exact_counts: list[np.ndarray] = []
            if deepest == 0:  # degenerate tree (all points in one cell)
                exact_starts.append(levels[0].starts)
                exact_counts.append(levels[0].counts)
            open_idx = np.zeros(1, dtype=np.int64)  # the root cell
            for level in range(1, deepest + 1):
                parent = levels[level - 1]
                lev = levels[level]
                pcodes = parent.codes[open_idx]
                child_lo = np.searchsorted(lev.codes, pcodes << dim)
                child_hi = np.searchsorted(lev.codes, (pcodes + 1) << dim)
                cand = _multi_arange(child_lo, child_hi - child_lo)
                com = lev.com[cand]
                # Distance from each cell's COM to the block's bounding
                # box (0 when the COM lies inside): the conservative gate
                # that makes one accept decision valid for every query.
                gap = np.maximum(box_lo - com, com - box_hi)
                np.maximum(gap, 0.0, out=gap)
                dist = np.sqrt(np.einsum("ij,ij->i", gap, gap))
                # Gate on the cell's *measured* spread (2 x max distance
                # of its points from the COM), not the quantized cell
                # width: tighter where cells are underfull, and immune to
                # boundary cells holding clamped outliers. Coincident
                # clusters (radius 0) collapse to an exact monopole.
                far = 2.0 * lev.radius[cand] < theta * dist
                far_cells = cand[far]
                if len(far_cells):
                    self._accumulate_monopoles(
                        q, lev, far_cells, acc, chunk_entries
                    )
                near = cand[~far]
                if level == deepest:
                    exact_starts.append(lev.starts[near])
                    exact_counts.append(lev.counts[near])
                else:
                    small = lev.counts[near] <= leaf_cap
                    exact_starts.append(lev.starts[near[small]])
                    exact_counts.append(lev.counts[near[small]])
                    open_idx = near[~small]
                    if not len(open_idx):
                        break
            idx = _multi_arange(
                np.concatenate(exact_starts), np.concatenate(exact_counts)
            )
            self._accumulate_exact(q, idx, acc, chunk_entries)
            out[lo:hi] = acc
        return out[self._inverse]

    def _accumulate_monopoles(
        self,
        q: np.ndarray,
        lev: _Level,
        cells: np.ndarray,
        acc: np.ndarray,
        chunk_entries: int,
    ) -> None:
        """Add each far cell's monopole force to every query in the block."""
        chunk = lev.com[cells]
        mass = lev.counts[cells].astype(np.float64)
        _accumulate_inverse_square(q, chunk, mass, acc, chunk_entries)

    def _accumulate_exact(
        self,
        q: np.ndarray,
        idx: np.ndarray,
        acc: np.ndarray,
        chunk_entries: int,
    ) -> None:
        """Add the exact pair forces of the near-field points."""
        _accumulate_inverse_square(
            q, self._sorted_points[idx], None, acc, chunk_entries
        )


def _accumulate_inverse_square(
    q: np.ndarray,
    src: np.ndarray,
    mass: np.ndarray | None,
    acc: np.ndarray,
    chunk_entries: int,
) -> None:
    """``acc[b] += Σ_c mass_c (q_b - src_c) / max(|q_b - src_c|², EPS2)``.

    The kernel both the far (monopole) and near (exact pair) paths share,
    written GEMM-shaped: squared distances come from the expansion
    ``|q|² - 2 q·src + |src|²`` (one BLAS matmul instead of a
    ``(B, C, dim)`` difference tensor), and the force contraction
    factors as ``q * Σ_c w - w @ src`` with ``w = mass / r²`` — two more
    BLAS calls. Peak temporaries are O(block × chunk), never
    O(block × chunk × dim). A self-pair (``src_c`` the same row as
    ``q_b``) cancels exactly in the factored contraction, matching the
    zero contribution the clamped direct form gives it.
    """
    if len(src) == 0:
        return
    step = max(1, chunk_entries // max(1, len(q)))
    qq = np.einsum("ij,ij->i", q, q)
    for c0 in range(0, len(src), step):
        s = src[c0 : c0 + step]
        w = q @ s.T  # reused: G, then r², then the weights
        w *= -2.0
        w += qq[:, None]
        w += np.einsum("ij,ij->i", s, s)[None, :]
        np.maximum(w, EPS2, out=w)
        np.reciprocal(w, out=w)
        if mass is not None:
            w *= mass[None, c0 : c0 + step]
        acc += q * w.sum(axis=1)[:, None]
        acc -= w @ s


def barnes_hut_repulsion(
    points: np.ndarray,
    theta: float = 0.8,
    *,
    bits: int = 10,
    block_size: int = 512,
    leaf_cap: int = 16,
) -> np.ndarray:
    """One-shot build + evaluate (see :class:`BarnesHutTree`)."""
    return BarnesHutTree(points, bits=bits).repulsion(
        theta, block_size=block_size, leaf_cap=leaf_cap
    )
