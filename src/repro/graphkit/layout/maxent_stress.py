"""Maxent-Stress graph layout (Gansner-Hu-North 2012; Wegner et al. 2017).

This is the layout the paper's widget recomputes on every cut-off or frame
switch (Listing 1: ``nk.viz.MaxentStress(G, 3, 3)``). The model minimizes

.. math::

    H(x) = \\sum_{\\{i,j\\} \\in S} w_{ij}\\,(\\lVert x_i - x_j\\rVert - d_{ij})^2
           \\; - \\; \\alpha \\sum_{\\{i,j\\} \\notin S} \\ln \\lVert x_i - x_j \\rVert

where ``S`` contains node pairs with known target distances (graph
neighbourhoods up to ``k`` hops) and the entropy term keeps unknown pairs
apart. We use the local iteration of Gansner et al. with geometric
α-annealing, fully vectorized over arcs. The entropy gradient has two
engines: sampled repulsion (O(n·q) per sweep; the historical default) and
a Barnes-Hut octree (:mod:`~repro.graphkit.layout.bhtree`, O(n log n) per
sweep over *all* unknown pairs — the analog of NetworKit's
well-separated pair decomposition); ``impl="auto"`` switches to the tree
at :data:`BARNES_HUT_THRESHOLD` nodes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..csr import CSRGraph
from ..graph import Graph
from ..kernels import batched_bfs_distances, source_blocks
from .bhtree import BarnesHutTree

__all__ = [
    "MaxentStress",
    "maxent_stress_layout",
    "maxent_stress_value",
    "BARNES_HUT_THRESHOLD",
]

_EPS = 1e-9
#: ``impl="auto"`` switches from the sampled estimator to Barnes-Hut at
#: this node count: below it the O(n·q) sampled sweep is cheaper than a
#: tree build + evaluation; above it the O(n²)-equivalent variance of
#: sampling (and the cost of raising q to compensate) loses to the
#: O(n log n) tree.
BARNES_HUT_THRESHOLD = 4096
#: ``"sampled"`` is the canonical name of the vectorized sampled-repulsion
#: engine; ``"vectorized"`` is its historical alias (same code path,
#: bit-identical). ``"barnes_hut"`` replaces sampling with theta-gated
#: tree-approximated repulsion over *all* unknown pairs; ``"auto"`` picks
#: by node count (:data:`BARNES_HUT_THRESHOLD`).
_IMPLEMENTATIONS = ("auto", "barnes_hut", "sampled", "vectorized", "reference")

# Per-sweep displacement cap for the Barnes-Hut engine, in units of the
# layout scale (mean target distance). Large enough that legitimate
# majorization moves are never touched; small enough to stop the
# singular-gradient teleports described at the use site.
_BH_STEP_SCALES = 100.0


def _resolve_impl(impl: str, n: int) -> str:
    if impl not in _IMPLEMENTATIONS:
        raise ValueError(f"impl must be one of {_IMPLEMENTATIONS}, got {impl!r}")
    if impl == "auto":
        return "barnes_hut" if n >= BARNES_HUT_THRESHOLD else "sampled"
    if impl == "vectorized":
        return "sampled"
    return impl


def _khop_pairs_reference(
    csr: CSRGraph, k: int, max_pairs_per_node: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scalar truncated-BFS discovery of the 2..k-hop pairs (per node)."""
    n = csr.n
    extra_t: list[int] = []
    extra_h: list[int] = []
    extra_d: list[float] = []
    for u in range(n):
        # Truncated BFS: stop at depth k.
        seen = {u: 0}
        frontier = [u]
        depth = 0
        budget = max_pairs_per_node
        while frontier and depth < k and budget > 0:
            depth += 1
            nxt = []
            for x in frontier:
                for v in csr.neighbors(x):
                    v = int(v)
                    if v not in seen:
                        seen[v] = depth
                        nxt.append(v)
                        if depth >= 2 and budget > 0:
                            extra_t.append(u)
                            extra_h.append(v)
                            extra_d.append(float(depth))
                            budget -= 1
            frontier = nxt
    return (
        np.asarray(extra_t, dtype=np.int64),
        np.asarray(extra_h, dtype=np.int64),
        np.asarray(extra_d, dtype=np.float64),
    )


def _khop_pairs_vectorized(
    csr: CSRGraph, k: int, max_pairs_per_node: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched depth-capped BFS discovery of the 2..k-hop pairs.

    Multi-source BFS truncated at depth ``k``, processed in source blocks
    so peak memory stays O(block × n) rather than a dense (n, n) matrix;
    a node's pairs live entirely within its block, so the per-node budget
    (keep the lowest (depth, head) pairs, mirroring the reference
    heuristic's breadth-first preference) applies per block.
    """
    n = csr.n
    out_t: list[np.ndarray] = []
    out_h: list[np.ndarray] = []
    out_d: list[np.ndarray] = []
    for lo, hi in source_blocks(0, n, n):
        dist = batched_bfs_distances(csr, np.arange(lo, hi), max_depth=k)
        t, h = np.nonzero((dist >= 2) & (dist <= k))
        if len(t) == 0:
            continue
        d = dist[t, h].astype(np.float64)
        # Per-tail budget: keep the lowest (depth, head) pairs of each node.
        order = np.lexsort((h, d, t))
        t, h, d = t[order], h[order], d[order]
        starts = np.flatnonzero(np.concatenate([[True], t[1:] != t[:-1]]))
        run_lengths = np.diff(np.concatenate([starts, [len(t)]]))
        # Rank within each tail's run: position minus the run's start.
        rank = np.arange(len(t)) - np.repeat(starts, run_lengths)
        keep = rank < max_pairs_per_node
        out_t.append(t[keep].astype(np.int64) + lo)
        out_h.append(h[keep].astype(np.int64))
        out_d.append(d[keep])
    if not out_t:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    return np.concatenate(out_t), np.concatenate(out_h), np.concatenate(out_d)


def _known_pairs(
    csr: CSRGraph, k: int, max_pairs_per_node: int, *, impl: str = "vectorized"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Arc list (tails, heads, target distance) for the ≤ k-hop pairs.

    k=1 returns the plain (symmetric) edge arcs with d = edge weight; for
    k>1 each node additionally pins up to ``max_pairs_per_node`` nodes at
    hop distance ≤ k (breadth-first truncated), with d = hop count.  The
    arc list contains both directions of every pair so per-node reductions
    are single bincount calls.

    The two engines agree exactly whenever the per-node budget does not
    bind. When it does bind, they intentionally truncate differently —
    reference keeps BFS discovery order, vectorized keeps the lowest
    (depth, head) pairs — so differential layout tests must use graphs
    whose 2..k-hop neighbourhoods stay within the budget.
    """
    n = csr.n
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.indptr))
    tails = [rows]
    heads = [csr.indices.astype(np.int64)]
    dists = [np.maximum(csr.weights, _EPS)]
    if k > 1:
        khop = (
            _khop_pairs_reference if impl == "reference" else _khop_pairs_vectorized
        )
        extra_t, extra_h, extra_d = khop(csr, k, max_pairs_per_node)
        if len(extra_t):
            tails.append(extra_t)
            heads.append(extra_h)
            dists.append(extra_d)
    return np.concatenate(tails), np.concatenate(heads), np.concatenate(dists)


def maxent_stress_layout(
    g: Graph | CSRGraph,
    dim: int = 3,
    k: int = 1,
    *,
    alpha: float = 1.0,
    alpha_min: float = 0.008,
    alpha_decay: float = 0.5,
    iterations_per_alpha: int = 12,
    repulsion_samples: int = 8,
    repulsion_theta: float = 0.8,
    tol: float = 1e-4,
    seed: int | None = 42,
    initial: np.ndarray | None = None,
    impl: str = "auto",
    cancel: Callable[[], bool] | None = None,
) -> np.ndarray:
    """Compute an ``(n, dim)`` Maxent-Stress embedding.

    Parameters
    ----------
    g:
        Undirected graph.
    dim:
        Embedding dimension (3 for the RIN widget).
    k:
        Neighbourhood radius for known-distance pairs.
    alpha / alpha_min / alpha_decay:
        Entropy weight annealing schedule (matches NetworKit defaults in
        spirit: α halves until 0.008).
    iterations_per_alpha:
        Local-iteration sweeps per annealing stage.
    repulsion_samples:
        Sampled far-pairs per node per sweep (q), used by the sampled
        engine only. 0 disables the entropy term (classic sparse stress)
        in *every* engine, Barnes-Hut included.
    repulsion_theta:
        Barnes-Hut opening angle (``impl="barnes_hut"`` only): smaller is
        more accurate and more expensive; the approximation error is
        bounded by :func:`~repro.graphkit.layout.bhtree.force_error_bound`.
    tol:
        Early stop when mean displacement per sweep falls below
        ``tol × layout scale``.
    initial:
        Warm-start coordinates, e.g. the previous frame's layout — this is
        what makes widget frame switches cheaper than cold layouts.
    impl:
        ``"auto"`` (default) picks ``"barnes_hut"`` at or above
        :data:`BARNES_HUT_THRESHOLD` nodes and ``"sampled"`` below it.
        ``"sampled"`` (alias ``"vectorized"``, the historical name) uses
        batched BFS for pair discovery, bincount scatter-adds, and the
        sampled repulsion estimator; ``"barnes_hut"`` shares those sweep
        kernels but evaluates the entropy gradient over *all* unknown
        pairs through a theta-gated octree — deterministic (no sampling
        noise) and bounded-error rather than bit-identical to the exact
        sum. ``"reference"`` uses per-node BFS and ``np.add.at`` — same
        model, naive kernels.
    cancel:
        Optional zero-argument callable polled once per local-iteration
        sweep (solver-iteration granularity). When it returns True the
        solve stops early and the *partial* coordinates are returned —
        the async update pipeline uses this to abandon a stale slider
        event while keeping the partial embedding as the next warm start.
    """
    csr = g.csr() if isinstance(g, Graph) else g
    n = csr.n
    impl = _resolve_impl(impl, n)
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if n == 0:
        return np.zeros((0, dim))
    rng = np.random.default_rng(seed)
    if initial is not None:
        x = np.array(initial, dtype=np.float64, copy=True)
        if x.shape != (n, dim):
            raise ValueError(f"initial layout must be ({n}, {dim}), got {x.shape}")
    else:
        x = rng.standard_normal((n, dim))
    if csr.nnz == 0:
        return x  # nothing to optimize against

    tails, heads, d_target = _known_pairs(
        csr, max(1, k), max_pairs_per_node=24, impl=impl
    )
    w = 1.0 / np.maximum(d_target, _EPS) ** 2
    rho = np.bincount(tails, weights=w, minlength=n)
    rho = np.maximum(rho, _EPS)
    degrees = csr.degrees()

    if impl != "reference":
        # Segment scatter: one bincount per coordinate axis (compiled
        # accumulation) instead of the element-at-a-time np.add.at ufunc.
        def scatter_add(agg: np.ndarray, contrib: np.ndarray) -> None:
            for axis in range(agg.shape[1]):
                agg[:, axis] += np.bincount(
                    tails, weights=contrib[:, axis], minlength=n
                )
    else:
        def scatter_add(agg: np.ndarray, contrib: np.ndarray) -> None:
            np.add.at(agg, tails, contrib)

    a = float(alpha)
    scale = float(np.mean(d_target))
    while True:
        for _ in range(iterations_per_alpha):
            if cancel is not None and cancel():
                return x
            diff = x[tails] - x[heads]  # (nnz, dim)
            dist = np.linalg.norm(diff, axis=1)
            np.maximum(dist, _EPS, out=dist)
            # Attraction toward the target sphere around each neighbour.
            coeff = (w * d_target / dist)[:, None]
            contrib = w[:, None] * x[heads] + coeff * diff
            agg = np.zeros_like(x)
            scatter_add(agg, contrib)

            if repulsion_samples > 0 and a > 0.0 and n > 1:
                if impl == "barnes_hut":
                    # All-pairs repulsion through the theta-gated tree,
                    # minus the exact contribution of the known (stress)
                    # arcs so the entropy gradient covers precisely the
                    # unknown pairs. Deterministic: no rng draw here, so
                    # warm-started re-solves are reproducible.
                    rep = BarnesHutTree(x).repulsion(repulsion_theta)
                    known = diff / np.maximum(dist * dist, _EPS)[:, None]
                    krep = np.zeros_like(x)
                    scatter_add(krep, known)
                    rep -= krep
                else:
                    q = min(repulsion_samples, n - 1)
                    far = rng.integers(0, n, size=(n, q))
                    rdiff = x[:, None, :] - x[far]  # (n, q, dim)
                    rdist2 = np.einsum("ijk,ijk->ij", rdiff, rdiff)
                    np.maximum(rdist2, _EPS, out=rdist2)
                    rep = (rdiff / rdist2[:, :, None]).sum(axis=1)
                    # Scale sample mean to the (n - 1 - deg) unknown pairs.
                    unknown = np.maximum(n - 1 - degrees, 0)[:, None]
                    rep *= unknown / q
                x_new = agg / rho[:, None] + (a / rho)[:, None] * rep
                if impl == "barnes_hut":
                    # Trust region. The entropy gradient is unbounded for
                    # pair-free nodes (rho floored to _EPS turns the
                    # repulsion term into a ~1/_EPS kick) and near-singular
                    # at coincident points, both of which stress-majorized
                    # warm starts produce in bulk: one uncapped sweep can
                    # teleport such nodes nine orders of magnitude out,
                    # wrecking the embedding and collapsing the octree to a
                    # handful of cells (its O(n log n) evaluation degrades
                    # to O(n²)). The cap is deterministic, so warm-started
                    # re-solves stay bit-identical.
                    step = x_new - x
                    norm = np.linalg.norm(step, axis=1)
                    limit = _BH_STEP_SCALES * max(scale, _EPS)
                    hot = norm > limit
                    if hot.any():
                        shrink = np.where(hot, limit / np.maximum(norm, _EPS), 1.0)
                        x_new = x + step * shrink[:, None]
            else:
                x_new = agg / rho[:, None]

            move = float(np.linalg.norm(x_new - x, axis=1).mean())
            x = x_new
            if move < tol * max(scale, _EPS):
                break
        if a <= alpha_min or repulsion_samples == 0:
            break
        a = max(a * alpha_decay, alpha_min)
    return x


def maxent_stress_value(
    g: Graph | CSRGraph, coords: np.ndarray, k: int = 1
) -> float:
    """The stress term of the maxent objective at ``coords``.

    ``Σ w_ij (‖x_i - x_j‖ - d_ij)²`` over the known-pair arc list (both
    directions of every pair, so each pair counts twice — only ratios
    between layouts of the same graph are meaningful). This is the
    quality metric the layout benchmarks compare engines at: two layouts
    are "matched" when their stress values agree within tolerance.
    """
    csr = g.csr() if isinstance(g, Graph) else g
    x = np.asarray(coords, dtype=np.float64)
    if x.shape[0] != csr.n:
        raise ValueError(f"coords must have {csr.n} rows, got {x.shape[0]}")
    if csr.nnz == 0:
        return 0.0
    tails, heads, d_target = _known_pairs(csr, max(1, k), max_pairs_per_node=24)
    w = 1.0 / np.maximum(d_target, _EPS) ** 2
    dist = np.linalg.norm(x[tails] - x[heads], axis=1)
    return float((w * (dist - d_target) ** 2).sum())


class MaxentStress:
    """NetworKit-style runner: ``MaxentStress(G, 3, 3).run().getCoordinates()``.

    Parameters mirror :func:`maxent_stress_layout`; ``dim`` and ``k`` are
    positional to match the paper's Listing 1 call signature.
    """

    def __init__(
        self,
        g: Graph | CSRGraph,
        dim: int = 3,
        k: int = 1,
        *,
        seed: int | None = 42,
        initial: np.ndarray | None = None,
        impl: str = "auto",
        **kwargs,
    ):
        self._g = g
        self._dim = dim
        self._k = k
        self._seed = seed
        self._initial = initial
        self._kwargs = dict(kwargs, impl=impl)
        self._coords: np.ndarray | None = None

    def run(self) -> "MaxentStress":
        """Compute the embedding."""
        self._coords = maxent_stress_layout(
            self._g,
            self._dim,
            self._k,
            seed=self._seed,
            initial=self._initial,
            **self._kwargs,
        )
        return self

    def getCoordinates(self) -> np.ndarray:  # noqa: N802 - NetworKit naming
        """The ``(n, dim)`` coordinates; requires :meth:`run`."""
        if self._coords is None:
            raise RuntimeError("call run() first")
        return self._coords

    def get_coordinates(self) -> np.ndarray:
        """PEP8 alias of :meth:`getCoordinates`."""
        return self.getCoordinates()
