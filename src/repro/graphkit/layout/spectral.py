"""Spectral layout from the graph Laplacian's low eigenvectors."""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as splinalg

from ..csr import CSRGraph
from ..graph import Graph

__all__ = ["spectral_layout"]


def spectral_layout(g: Graph | CSRGraph, dim: int = 2) -> np.ndarray:
    """Coordinates from Laplacian eigenvectors 2..dim+1 (Fiedler space).

    Deterministic and fast; a good warm start for the iterative layouts.
    Falls back to dense ``eigh`` for graphs too small for Lanczos.
    """
    csr = g.csr() if isinstance(g, Graph) else g
    n = csr.n
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if n == 0:
        return np.zeros((0, dim))
    if n <= dim + 1:
        # Not enough spectrum; spread nodes deterministically.
        coords = np.zeros((n, dim))
        coords[:, 0] = np.arange(n)
        return coords
    adj = csr.to_scipy()
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    lap = sparse.diags(degrees) - adj
    k = dim + 1
    if n < 5 * k:
        vals, vecs = np.linalg.eigh(lap.toarray())
    else:
        try:
            vals, vecs = splinalg.eigsh(lap.tocsc(), k=k, sigma=0.0, which="LM")
        except Exception:
            vals, vecs = np.linalg.eigh(lap.toarray())
    order = np.argsort(vals)
    return np.ascontiguousarray(vecs[:, order[1 : dim + 1]], dtype=np.float64)
