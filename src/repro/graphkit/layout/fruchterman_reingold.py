"""Fruchterman-Reingold force-directed layout (2D/3D).

Referenced by the paper as one of Gephi's drawing algorithms; provided here
as the classic baseline against Maxent-Stress. Exact all-pairs repulsion is
vectorized for small graphs and switches to sampled repulsion above
``exact_threshold`` nodes to keep memory O(n·q).
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..graph import Graph

__all__ = ["FruchtermanReingold", "fruchterman_reingold_layout"]

_EPS = 1e-9


def fruchterman_reingold_layout(
    g: Graph | CSRGraph,
    dim: int = 2,
    *,
    iterations: int = 50,
    seed: int | None = 42,
    initial: np.ndarray | None = None,
    exact_threshold: int = 2000,
    repulsion_samples: int = 16,
) -> np.ndarray:
    """Compute an ``(n, dim)`` force-directed embedding.

    Temperature follows the classic linear cooling schedule; the optimal
    pairwise distance is ``k = (volume / n)^(1/dim)`` in the unit box.
    """
    csr = g.csr() if isinstance(g, Graph) else g
    n = csr.n
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if n == 0:
        return np.zeros((0, dim))
    rng = np.random.default_rng(seed)
    if initial is not None:
        x = np.array(initial, dtype=np.float64, copy=True)
        if x.shape != (n, dim):
            raise ValueError(f"initial layout must be ({n}, {dim})")
    else:
        x = rng.random((n, dim))
    if n == 1:
        return x
    k_opt = (1.0 / n) ** (1.0 / dim)
    temp = 0.1
    cooling = temp / (iterations + 1)
    tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.indptr))
    heads = csr.indices.astype(np.int64)

    for _ in range(iterations):
        if n <= exact_threshold:
            delta = x[:, None, :] - x[None, :, :]  # (n, n, dim)
            dist2 = np.einsum("ijk,ijk->ij", delta, delta)
            np.maximum(dist2, _EPS, out=dist2)
            rep = (delta * (k_opt**2 / dist2)[:, :, None]).sum(axis=1)
        else:
            q = min(repulsion_samples, n - 1)
            far = rng.integers(0, n, size=(n, q))
            delta = x[:, None, :] - x[far]
            dist2 = np.einsum("ijk,ijk->ij", delta, delta)
            np.maximum(dist2, _EPS, out=dist2)
            rep = (delta * (k_opt**2 / dist2)[:, :, None]).sum(axis=1)
            rep *= (n - 1) / q

        disp = rep
        if len(tails):
            ediff = x[tails] - x[heads]
            edist = np.linalg.norm(ediff, axis=1)
            np.maximum(edist, _EPS, out=edist)
            attract = ediff * (edist / k_opt)[:, None]
            np.subtract.at(disp, tails, attract)

        length = np.linalg.norm(disp, axis=1)
        np.maximum(length, _EPS, out=length)
        x += disp / length[:, None] * np.minimum(length, temp)[:, None]
        temp = max(temp - cooling, 1e-4)
    return x


class FruchtermanReingold:
    """Runner wrapper: ``FruchtermanReingold(G, dim=3).run().getCoordinates()``."""

    def __init__(self, g: Graph | CSRGraph, dim: int = 2, **kwargs):
        self._g = g
        self._dim = dim
        self._kwargs = kwargs
        self._coords: np.ndarray | None = None

    def run(self) -> "FruchtermanReingold":
        """Compute the embedding."""
        self._coords = fruchterman_reingold_layout(
            self._g, self._dim, **self._kwargs
        )
        return self

    def getCoordinates(self) -> np.ndarray:  # noqa: N802 - NetworKit naming
        """The coordinates; requires :meth:`run`."""
        if self._coords is None:
            raise RuntimeError("call run() first")
        return self._coords
