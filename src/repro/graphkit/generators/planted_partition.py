"""Planted-partition (stochastic block model) generator.

The standard ground-truth workload for community-detection tests: ``b``
blocks with intra-block edge probability ``p_in`` and inter-block
probability ``p_out``.
"""

from __future__ import annotations

import numpy as np

from ..community.partition import Partition
from ..graph import Graph

__all__ = ["planted_partition"]


def planted_partition(
    n: int,
    blocks: int,
    p_in: float,
    p_out: float,
    *,
    seed: int | None = None,
) -> tuple[Graph, Partition]:
    """Sample a stochastic block model with equal-size blocks.

    Returns the graph and the ground-truth :class:`Partition`.
    """
    if blocks < 1:
        raise ValueError(f"blocks must be >= 1, got {blocks}")
    if n < blocks:
        raise ValueError(f"n={n} must be >= blocks={blocks}")
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % blocks
    rng.shuffle(labels)
    g = Graph(n)
    # Vectorized pair sampling per probability class: draw the upper
    # triangle mask in blocks of rows to bound memory at O(n) per row.
    for u in range(n - 1):
        vs = np.arange(u + 1, n)
        probs = np.where(labels[vs] == labels[u], p_in, p_out)
        hits = vs[rng.random(len(vs)) < probs]
        for v in hits:
            g.add_edge(u, int(v))
    return g, Partition(labels)
