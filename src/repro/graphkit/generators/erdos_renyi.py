"""Erdos-Renyi G(n, p) generator."""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = ["erdos_renyi"]


def erdos_renyi(n: int, p: float, *, seed: int | None = None) -> Graph:
    """Sample G(n, p) with vectorized geometric edge skipping.

    Instead of testing all ``n(n-1)/2`` pairs, edge gaps are drawn from the
    geometric distribution (the standard O(n + m) trick), so dense loops in
    Python are avoided entirely.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    g = Graph(n)
    if n < 2 or p == 0.0:
        return g
    rng = np.random.default_rng(seed)
    total_pairs = n * (n - 1) // 2
    if p == 1.0:
        picks = np.arange(total_pairs, dtype=np.int64)
    else:
        # Expected edges + slack; draw geometric gaps in one vector call.
        expected = int(total_pairs * p)
        budget = expected + 10 + int(4 * np.sqrt(max(expected, 1)))
        gaps = rng.geometric(p, size=budget)
        positions = np.cumsum(gaps) - 1
        while positions[-1] < total_pairs:  # rare: extend the tail
            more = rng.geometric(p, size=budget)
            positions = np.concatenate(
                [positions, positions[-1] + np.cumsum(more)]
            )
        picks = positions[positions < total_pairs]
    # Map linear pair index k to (u, v), u < v, row-major upper triangle.
    u = (
        n
        - 2
        - np.floor(
            np.sqrt(-8.0 * picks + 4.0 * n * (n - 1) - 7.0) / 2.0 - 0.5
        ).astype(np.int64)
    )
    v = picks + u + 1 - (n * (n - 1) // 2) + ((n - u) * (n - u - 1)) // 2
    for a, b in zip(u, v):
        g.add_edge(int(a), int(b))
    return g
