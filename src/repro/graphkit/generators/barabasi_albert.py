"""Barabasi-Albert preferential attachment generator."""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = ["barabasi_albert"]


def barabasi_albert(
    n: int, k: int, *, n0: int | None = None, seed: int | None = None
) -> Graph:
    """Preferential attachment: each new node attaches to ``k`` targets.

    Uses the repeated-endpoint list trick: sampling uniformly from the list
    of all edge endpoints is exactly degree-proportional sampling, no
    per-step degree renormalization required.

    Parameters
    ----------
    n:
        Final node count.
    k:
        Edges added per new node.
    n0:
        Size of the seed clique (default ``k``).
    seed:
        RNG seed.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n0 = k if n0 is None else n0
    if n0 < k:
        raise ValueError(f"seed size n0={n0} must be >= k={k}")
    if n < n0:
        raise ValueError(f"n={n} must be >= n0={n0}")
    rng = np.random.default_rng(seed)
    g = Graph(n)
    endpoints: list[int] = []
    # Seed: a clique on n0 nodes (connected, degree > 0 everywhere).
    for u in range(n0):
        for v in range(u + 1, n0):
            g.add_edge(u, v)
            endpoints.extend((u, v))
    if n0 == 1 and n > 1:
        endpoints.append(0)  # lone seed node needs presence in the pool
    for u in range(n0, n):
        targets: set[int] = set()
        pool = endpoints
        while len(targets) < min(k, u):
            cand = pool[int(rng.integers(len(pool)))]
            targets.add(cand)
        for v in targets:
            g.add_edge(u, v)
            endpoints.extend((u, v))
    return g
