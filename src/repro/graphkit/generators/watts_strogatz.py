"""Watts-Strogatz small-world generator."""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = ["watts_strogatz"]


def watts_strogatz(
    n: int, k: int, p: float, *, seed: int | None = None
) -> Graph:
    """Ring lattice with ``k`` nearest neighbours, rewired with prob. ``p``.

    Parameters
    ----------
    n:
        Node count.
    k:
        Each node connects to ``k`` nearest ring neighbours (must be even
        and ``< n``).
    p:
        Rewiring probability per lattice edge.
    """
    if k % 2 != 0:
        raise ValueError(f"k must be even, got {k}")
    if k >= n:
        raise ValueError(f"k={k} must be < n={n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    g = Graph(n)
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if not g.has_edge(u, v):
                g.add_edge(u, v)
    if p > 0.0:
        for u, v in list(g.iter_edges()):
            if rng.random() < p:
                # Rewire the far endpoint to a uniform non-neighbour.
                candidates = np.flatnonzero(
                    ~np.isin(np.arange(n), [u, *g.neighbors(u)])
                )
                if len(candidates) == 0:
                    continue
                w = int(rng.choice(candidates))
                g.remove_edge(u, v)
                g.add_edge(u, w)
    return g
