"""Graph generators (NetworKit ``generators`` module analog)."""

from .barabasi_albert import barabasi_albert
from .erdos_renyi import erdos_renyi
from .grid import grid_2d, grid_3d
from .planted_partition import planted_partition
from .rgg import random_geometric
from .watts_strogatz import watts_strogatz

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "random_geometric",
    "watts_strogatz",
    "grid_2d",
    "grid_3d",
    "planted_partition",
]
