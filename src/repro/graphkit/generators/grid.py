"""Regular grid graphs (2-D and 3-D)."""

from __future__ import annotations

from ..graph import Graph

__all__ = ["grid_2d", "grid_3d"]


def grid_2d(rows: int, cols: int) -> Graph:
    """4-connected ``rows × cols`` lattice; node id ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be >= 1")
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1)
            if r + 1 < rows:
                g.add_edge(u, u + cols)
    return g


def grid_3d(nx: int, ny: int, nz: int) -> Graph:
    """6-connected lattice; node id ``(x * ny + y) * nz + z``."""
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be >= 1")
    g = Graph(nx * ny * nz)

    def nid(x: int, y: int, z: int) -> int:
        return (x * ny + y) * nz + z

    for x in range(nx):
        for y in range(ny):
            for z in range(nz):
                u = nid(x, y, z)
                if x + 1 < nx:
                    g.add_edge(u, nid(x + 1, y, z))
                if y + 1 < ny:
                    g.add_edge(u, nid(x, y + 1, z))
                if z + 1 < nz:
                    g.add_edge(u, nid(x, y, z + 1))
    return g
