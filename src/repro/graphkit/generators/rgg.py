"""Random geometric graph in 2 or 3 dimensions.

Nodes are uniform points in the unit cube; an edge joins pairs within
``radius``. This is the structural twin of a RIN (cut-off graph on
residue positions), which makes it the natural scalability workload for
the Figure 4 layout benchmark.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..graph import Graph

__all__ = ["random_geometric"]


def random_geometric(
    n: int,
    radius: float,
    *,
    dim: int = 3,
    seed: int | None = None,
    return_positions: bool = False,
) -> Graph | tuple[Graph, np.ndarray]:
    """Sample a random geometric graph via a k-d tree range query.

    Parameters
    ----------
    n:
        Node count.
    radius:
        Connection radius in the unit cube.
    dim:
        2 or 3 dimensions.
    return_positions:
        Also return the ``(n, dim)`` point array (useful as an initial
        layout).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if dim not in (2, 3):
        raise ValueError(f"dim must be 2 or 3, got {dim}")
    rng = np.random.default_rng(seed)
    points = rng.random((n, dim))
    g = Graph(n)
    if n >= 2 and radius > 0:
        tree = cKDTree(points)
        pairs = tree.query_pairs(r=radius, output_type="ndarray")
        for u, v in pairs:
            g.add_edge(int(u), int(v))
    if return_positions:
        return g, points
    return g
