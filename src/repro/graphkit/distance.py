"""Shortest-path algorithms (NetworKit ``distance`` module analog).

Provides vectorized BFS (unweighted), Dijkstra (weighted), all-pairs
shortest paths, eccentricity and diameter (exact and two-sweep estimate).

The BFS kernel is frontier-based: each level expands all frontier nodes at
once via CSR gathers, so per-level work is a handful of NumPy calls rather
than a Python loop over edges — the "vectorize the inner loop" idiom.
Multi-source queries batch entirely: unweighted APSP runs the SpMM BFS
kernel, weighted APSP and distance-to-set queries run the multi-source
delta-stepping kernel (no per-source heap loop; see ``docs/KERNELS.md``).
:func:`dijkstra` remains the scalar single-source API and doubles as the
reference twin the batched weighted kernels are differentially tested
against.
"""

from __future__ import annotations

import heapq

import numpy as np

from .csr import CSRGraph
from .graph import Graph
from .kernels import (
    batched_bfs_distances,
    batched_delta_stepping_distances,
    multi_source_delta_stepping,
)
from .parallel import parallel_for_chunks

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "dijkstra",
    "all_pairs_distances",
    "eccentricity",
    "multi_source_bfs",
    "multi_source_dijkstra",
    "effective_diameter",
    "Diameter",
    "BFS",
    "APSP",
]

UNREACHED = -1


def _as_csr(g: Graph | CSRGraph) -> CSRGraph:
    return g.csr() if isinstance(g, Graph) else g


def bfs_distances(g: Graph | CSRGraph, source: int) -> np.ndarray:
    """Hop distances from ``source``; unreachable nodes get ``-1``."""
    csr = _as_csr(g)
    n = csr.n
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    dist = np.full(n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        nbrs = csr.expand_frontier(frontier)
        if len(nbrs) == 0:
            break
        fresh = np.unique(nbrs[dist[nbrs] == UNREACHED])
        if len(fresh) == 0:
            break
        dist[fresh] = level
        frontier = fresh.astype(np.int64)
    return dist


def bfs_tree(g: Graph | CSRGraph, source: int) -> tuple[np.ndarray, np.ndarray]:
    """BFS distances and one predecessor per node (-1 at roots/unreached)."""
    csr = _as_csr(g)
    n = csr.n
    dist = np.full(n, UNREACHED, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for v in csr.neighbors(u):
                if dist[v] == UNREACHED:
                    dist[v] = dist[u] + 1
                    parent[v] = u
                    nxt.append(int(v))
        frontier = nxt
    return dist, parent


def dijkstra(g: Graph | CSRGraph, source: int) -> np.ndarray:
    """Weighted shortest-path distances from ``source`` (inf if unreached).

    Textbook binary-heap Dijkstra — the scalar reference twin of the
    batched delta-stepping kernel; multi-source callers (weighted APSP,
    weighted closeness) use the kernel instead of looping this.
    """
    csr = _as_csr(g)
    n = csr.n
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    if np.any(csr.weights < 0):
        raise ValueError("Dijkstra requires non-negative edge weights")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap = [(0.0, source)]
    done = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        nbrs = csr.neighbors(u)
        wts = csr.neighbor_weights(u)
        for v, w in zip(nbrs, wts):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    return dist


def all_pairs_distances(
    g: Graph | CSRGraph,
    *,
    weighted: bool = False,
    threads: int | None = None,
    packed: bool | None = None,
) -> np.ndarray:
    """All-pairs shortest paths as an ``(n, n)`` matrix.

    Unweighted distances run the batched level-synchronous BFS kernel over
    a static block decomposition of the sources (one sparse-dense product
    per level per block; above the bit-packing threshold the frontier is
    carried as uint64 bitsets — ``packed`` forces the choice); weighted
    distances run the batched multi-source delta-stepping kernel over the
    same decomposition (one arc-parallel relaxation per bucket phase per
    block — no per-source heap loop). Unreachable pairs are ``inf`` in
    the returned float matrix.
    """
    csr = _as_csr(g)
    n = csr.n
    out = np.full((n, n), np.inf)

    if weighted:
        def run_chunk(start: int, stop: int) -> None:
            if stop <= start:
                return
            out[start:stop] = batched_delta_stepping_distances(
                csr, np.arange(start, stop)
            )
    else:
        def run_chunk(start: int, stop: int) -> None:
            if stop <= start:
                return
            d = batched_bfs_distances(
                csr, np.arange(start, stop), packed=packed
            )
            block = out[start:stop]
            reached = d >= 0
            block[reached] = d[reached]

    parallel_for_chunks(run_chunk, n, threads=threads)
    return out


def eccentricity(g: Graph | CSRGraph, source: int) -> int:
    """Maximum finite hop distance from ``source``."""
    d = bfs_distances(g, source)
    reached = d[d >= 0]
    return int(reached.max()) if len(reached) else 0


def multi_source_bfs(g: Graph | CSRGraph, sources) -> np.ndarray:
    """Hop distance to the *nearest* of several sources (-1 unreachable).

    One level-synchronous sweep from all seeds at once — the standard
    trick for distance-to-set queries (e.g. distance of every residue to
    an active site in a RIN).
    """
    csr = _as_csr(g)
    n = csr.n
    sources = np.asarray(list(sources), dtype=np.int64)
    if len(sources) == 0:
        raise ValueError("need at least one source")
    for s in sources:
        if not 0 <= s < n:
            raise IndexError(f"source {s} out of range [0, {n})")
    dist = np.full(n, UNREACHED, dtype=np.int64)
    dist[sources] = 0
    frontier = np.unique(sources)
    level = 0
    while len(frontier):
        level += 1
        nbrs = csr.expand_frontier(frontier)
        if len(nbrs) == 0:
            break
        fresh = np.unique(nbrs[dist[nbrs] == UNREACHED])
        if len(fresh) == 0:
            break
        dist[fresh] = level
        frontier = fresh.astype(np.int64)
    return dist


def multi_source_dijkstra(g: Graph | CSRGraph, sources) -> np.ndarray:
    """Weighted distance to the *nearest* of several sources (inf if
    unreachable) — the weighted counterpart of :func:`multi_source_bfs`.

    One delta-stepping sweep seeded at every source simultaneously, not a
    per-source heap loop.
    """
    csr = _as_csr(g)
    return multi_source_delta_stepping(csr, sources)


def effective_diameter(
    g: Graph | CSRGraph, *, percentile: float = 0.9
) -> float:
    """Smallest distance d such that ≥ ``percentile`` of connected pairs
    are within d hops (the classic 90%-effective diameter).

    Exact (all-pairs BFS); intended for the small/medium graphs RIN
    workflows produce. Returns 0 for graphs without connected pairs.
    """
    if not 0.0 < percentile <= 1.0:
        raise ValueError(f"percentile must be in (0, 1], got {percentile}")
    csr = _as_csr(g)
    n = csr.n
    if n < 2:
        return 0.0
    d = batched_bfs_distances(csr, np.arange(n))
    flat = d[d > 0]
    if len(flat) == 0:
        return 0.0
    return float(np.quantile(flat, percentile, method="inverted_cdf"))


class BFS:
    """NetworKit-style runner: ``BFS(G, source).run().distances()``."""

    def __init__(self, g: Graph | CSRGraph, source: int):
        self._g = g
        self._source = source
        self._dist: np.ndarray | None = None

    def run(self) -> "BFS":
        """Execute the traversal."""
        self._dist = bfs_distances(self._g, self._source)
        return self

    def distances(self) -> np.ndarray:
        """Hop distances (-1 when unreachable); requires :meth:`run`."""
        if self._dist is None:
            raise RuntimeError("call run() first")
        return self._dist


class APSP:
    """NetworKit-style all-pairs shortest path runner."""

    def __init__(self, g: Graph | CSRGraph, *, weighted: bool = False):
        self._g = g
        self._weighted = weighted
        self._dist: np.ndarray | None = None

    def run(self) -> "APSP":
        """Execute the all-pairs computation."""
        self._dist = all_pairs_distances(self._g, weighted=self._weighted)
        return self

    def distances(self) -> np.ndarray:
        """The ``(n, n)`` distance matrix; requires :meth:`run`."""
        if self._dist is None:
            raise RuntimeError("call run() first")
        return self._dist


class Diameter:
    """Graph diameter — exact or two-sweep lower-bound estimate.

    ``algo='exact'`` runs BFS from every node; ``algo='estimate'`` runs the
    classic double-sweep heuristic (BFS from an arbitrary node, then BFS
    from the farthest node found) which is exact on trees and a lower bound
    in general.
    """

    def __init__(self, g: Graph | CSRGraph, *, algo: str = "exact"):
        if algo not in ("exact", "estimate"):
            raise ValueError(f"unknown algo {algo!r}; use 'exact' or 'estimate'")
        self._g = g
        self._algo = algo
        self._value: int | None = None

    def run(self) -> "Diameter":
        """Compute the diameter over the largest set of reachable pairs."""
        csr = _as_csr(self._g)
        n = csr.n
        if n == 0:
            self._value = 0
            return self
        if self._algo == "exact":
            best = 0
            for s in range(n):
                best = max(best, eccentricity(csr, s))
            self._value = best
        else:
            d0 = bfs_distances(csr, 0)
            far = int(np.argmax(d0))
            d1 = bfs_distances(csr, far)
            self._value = int(d1.max()) if len(d1) else 0
        return self

    def get_diameter(self) -> int:
        """The computed diameter; requires :meth:`run`."""
        if self._value is None:
            raise RuntimeError("call run() first")
        return self._value
