"""Connected components (NetworKit ``components`` module analog)."""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import connected_components as _scipy_cc

from .csr import CSRGraph
from .graph import Graph

__all__ = ["ConnectedComponents", "connected_components", "largest_component"]


def connected_components(g: Graph | CSRGraph) -> tuple[int, np.ndarray]:
    """Number of components and per-node component labels.

    Uses scipy's compiled union-find over the CSR snapshot — the
    "use compiled code for the hot spot" guideline.
    """
    csr = g.csr() if isinstance(g, Graph) else g
    if csr.n == 0:
        return 0, np.empty(0, dtype=np.int64)
    # Connectivity is structural: the cached 0/1 pattern matrix avoids
    # materializing the weighted scipy adjacency on scan hot paths.
    count, labels = _scipy_cc(
        csr.to_scipy_pattern(), directed=csr.directed, connection="weak"
    )
    return int(count), labels.astype(np.int64)


def largest_component(g: Graph | CSRGraph) -> np.ndarray:
    """Node ids of the largest connected component (sorted)."""
    count, labels = connected_components(g)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    sizes = np.bincount(labels, minlength=count)
    return np.flatnonzero(labels == int(np.argmax(sizes))).astype(np.int64)


class ConnectedComponents:
    """NetworKit-style runner around :func:`connected_components`.

    Examples
    --------
    >>> from repro.graphkit import Graph
    >>> g = Graph.from_edges(4, [(0, 1), (2, 3)])
    >>> cc = ConnectedComponents(g).run()
    >>> cc.number_of_components()
    2
    """

    def __init__(self, g: Graph | CSRGraph):
        self._g = g
        self._count: int | None = None
        self._labels: np.ndarray | None = None

    def run(self) -> "ConnectedComponents":
        """Compute the components."""
        self._count, self._labels = connected_components(self._g)
        return self

    def _require(self) -> None:
        if self._count is None:
            raise RuntimeError("call run() first")

    def number_of_components(self) -> int:
        """Number of (weakly) connected components."""
        self._require()
        assert self._count is not None
        return self._count

    def component_of(self, u: int) -> int:
        """Component label of node ``u``."""
        self._require()
        assert self._labels is not None
        return int(self._labels[u])

    def labels(self) -> np.ndarray:
        """Per-node component labels."""
        self._require()
        assert self._labels is not None
        return self._labels

    def component_sizes(self) -> dict[int, int]:
        """Mapping component label -> size."""
        self._require()
        assert self._labels is not None and self._count is not None
        sizes = np.bincount(self._labels, minlength=self._count)
        return {int(i): int(s) for i, s in enumerate(sizes)}

    def get_components(self) -> list[list[int]]:
        """Components as lists of node ids (NetworKit naming)."""
        self._require()
        assert self._labels is not None and self._count is not None
        comps: list[list[int]] = [[] for _ in range(self._count)]
        for u, label in enumerate(self._labels):
            comps[label].append(u)
        return comps
