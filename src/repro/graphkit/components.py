"""Connected components (NetworKit ``components`` module analog)."""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import connected_components as _scipy_cc

from .csr import CSRGraph
from .graph import Graph

__all__ = [
    "ConnectedComponents",
    "connected_components",
    "largest_component",
    "IncrementalUnionFind",
]


def connected_components(g: Graph | CSRGraph) -> tuple[int, np.ndarray]:
    """Number of components and per-node component labels.

    Uses scipy's compiled union-find over the CSR snapshot — the
    "use compiled code for the hot spot" guideline.
    """
    csr = g.csr() if isinstance(g, Graph) else g
    if csr.n == 0:
        return 0, np.empty(0, dtype=np.int64)
    # Connectivity is structural: the cached 0/1 pattern matrix avoids
    # materializing the weighted scipy adjacency on scan hot paths.
    count, labels = _scipy_cc(
        csr.to_scipy_pattern(), directed=csr.directed, connection="weak"
    )
    return int(count), labels.astype(np.int64)


def largest_component(g: Graph | CSRGraph) -> np.ndarray:
    """Node ids of the largest connected component (sorted)."""
    count, labels = connected_components(g)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    sizes = np.bincount(labels, minlength=count)
    return np.flatnonzero(labels == int(np.argmax(sizes))).astype(np.int64)


class IncrementalUnionFind:
    """Connectivity over a *growing* edge set, merged in vectorized batches.

    The cut-off scan walks sorted-contact prefixes: the edge set at each
    cut-off extends the previous one, so running a full
    :func:`connected_components` pass per cut-off repeats O(m) work k
    times. This structure instead carries component labels forward and
    folds in only the delta edges: a vectorized lookup discards edges
    whose endpoints already share a component (the common case mid-scan
    exits right there), the surviving Δ crossing edges run a classic
    find/union walk, and vectorized pointer jumping re-canonicalizes the
    label array — O(n + Δ·α) per cut-off instead of O(n + m).

    Labels are canonical — every component is labelled by its smallest
    member node id — so they are a pure function of the edge set,
    independent of batch boundaries. That is the property the sharded
    scan's bit-identity guarantee rests on: any prefix split produces the
    same labels.

    Examples
    --------
    >>> uf = IncrementalUnionFind(4)
    >>> uf.count
    4
    >>> uf.union_edges([(0, 1)])
    1
    >>> uf.union_edges([(2, 3), (1, 0)])
    1
    >>> uf.count, uf.labels.tolist()
    (2, [0, 0, 2, 2])
    """

    __slots__ = ("_n", "_labels", "_count")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._n = int(n)
        self._labels = np.arange(self._n, dtype=np.int64)
        self._count = self._n

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def count(self) -> int:
        """Current number of components (isolated nodes included)."""
        return self._count

    @property
    def labels(self) -> np.ndarray:
        """Canonical per-node labels (smallest node id in the component).

        A read-only view — the array is reallocated on merges, so hold a
        copy if you need the labels of a particular prefix.
        """
        view = self._labels.view()
        view.flags.writeable = False
        return view

    def seed(self, labels: np.ndarray, count: int) -> None:
        """Adopt precomputed canonical labels (the bulk-init fast path).

        ``labels`` must already be canonical — every node labelled by the
        smallest member of its component (what
        :func:`~repro.graphkit.incremental.canonical_components`
        produces) — so the union/removal invariants hold immediately.
        """
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (self._n,):
            raise ValueError(f"labels must have shape ({self._n},)")
        self._labels = labels.copy()
        self._count = int(count)

    def remove_edges(self, edges: np.ndarray, csr: CSRGraph) -> int:
        """Handle a batch of edge *removals* via bounded component re-scan.

        Union-find cannot un-merge, so deletions re-derive connectivity —
        but only inside the **affected components** (those containing a
        removed endpoint). ``csr`` is the post-update adjacency snapshot:
        the affected components' member nodes are gathered, the subgraph
        induced on them runs one compiled connected-components pass, and
        the canonical smallest-member labels are written back. Everything
        outside the affected components is untouched, so the cost is
        sized by the components the removals live in, not by the graph.

        Arcs leaving the affected set (possible only through edges
        *inserted* by the same delta) are deliberately dropped here —
        folding the insertions through :meth:`union_edges` afterwards
        merges across the boundary and re-canonicalizes.

        Returns the net number of components created by splits.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if len(edges) == 0:
            return 0
        affected = np.unique(self._labels[edges.ravel()])
        member = np.isin(self._labels, affected)
        nodes = np.flatnonzero(member)
        gather, counts = csr.arc_gather(nodes)
        heads = csr.indices[gather].astype(np.int64)
        tails = np.repeat(nodes, counts)
        keep = member[heads]
        sub_of = np.full(self._n, -1, dtype=np.int64)
        sub_of[nodes] = np.arange(len(nodes), dtype=np.int64)
        mat = sparse.csr_matrix(
            (
                np.ones(int(keep.sum()), dtype=np.float64),
                (sub_of[tails[keep]], sub_of[heads[keep]]),
            ),
            shape=(len(nodes), len(nodes)),
        )
        ncomp, sub = _scipy_cc(mat, directed=False)
        # scipy labels sub-components in first-occurrence order and
        # ``nodes`` is ascending, so the first node carrying a sub-label
        # is that sub-component's minimum: canonical labels in one pass.
        _, first = np.unique(sub, return_index=True)
        labels = self._labels.copy()
        labels[nodes] = nodes[first[sub]]
        self._labels = labels
        created = int(ncomp) - len(affected)
        self._count += created
        return created

    def union_edges(self, edges: np.ndarray) -> int:
        """Fold a batch of ``(u, v)`` edges in; returns components merged.

        Batch union: a vectorized representative lookup filters the batch
        down to component-crossing edges, a union-by-minimum walk links
        their roots, and vectorized pointer jumping re-canonicalizes the
        label array (every parent link points at a smaller id, so the
        fixpoint of ``labels[labels]`` is exactly the smallest member of
        each component). Typical scan deltas cross nothing — that case
        exits after the lookup.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if len(edges) == 0:
            return 0
        crossing = self._labels[edges[:, 0]] != self._labels[edges[:, 1]]
        if not crossing.any():
            return 0
        parent = self._labels.copy()
        merges = 0
        for u, v in edges[crossing].tolist():
            # Find with path halving; union by smaller root id.
            while parent[u] != u:
                parent[u] = u = parent[parent[u]]
            while parent[v] != v:
                parent[v] = v = parent[parent[v]]
            if u != v:
                if u > v:
                    u, v = v, u
                parent[v] = u
                merges += 1
        # Pointer jumping to the canonical fixpoint (parents only ever
        # decrease, so this converges in O(log n) sweeps).
        while True:
            hop = parent[parent]
            if np.array_equal(hop, parent):
                break
            parent = hop
        self._labels = parent
        self._count -= merges
        return merges


class ConnectedComponents:
    """NetworKit-style runner around :func:`connected_components`.

    Examples
    --------
    >>> from repro.graphkit import Graph
    >>> g = Graph.from_edges(4, [(0, 1), (2, 3)])
    >>> cc = ConnectedComponents(g).run()
    >>> cc.number_of_components()
    2
    """

    def __init__(self, g: Graph | CSRGraph):
        self._g = g
        self._count: int | None = None
        self._labels: np.ndarray | None = None

    def run(self) -> "ConnectedComponents":
        """Compute the components."""
        self._count, self._labels = connected_components(self._g)
        return self

    def _require(self) -> None:
        if self._count is None:
            raise RuntimeError("call run() first")

    def number_of_components(self) -> int:
        """Number of (weakly) connected components."""
        self._require()
        assert self._count is not None
        return self._count

    def component_of(self, u: int) -> int:
        """Component label of node ``u``."""
        self._require()
        assert self._labels is not None
        return int(self._labels[u])

    def labels(self) -> np.ndarray:
        """Per-node component labels."""
        self._require()
        assert self._labels is not None
        return self._labels

    def component_sizes(self) -> dict[int, int]:
        """Mapping component label -> size."""
        self._require()
        assert self._labels is not None and self._count is not None
        sizes = np.bincount(self._labels, minlength=self._count)
        return {int(i): int(s) for i, s in enumerate(sizes)}

    def get_components(self) -> list[list[int]]:
        """Components as lists of node ids (NetworKit naming)."""
        self._require()
        assert self._labels is not None and self._count is not None
        comps: list[list[int]] = [[] for _ in range(self._count)]
        for u, label in enumerate(self._labels):
            comps[label].append(u)
        return comps
