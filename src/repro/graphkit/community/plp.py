"""PLP — parallel label propagation (Raghavan et al. / NetworKit PLP).

Each node repeatedly adopts the label with the highest total edge weight
among its neighbours; convergence typically takes a handful of sweeps.
The sweep is semi-synchronous: nodes are visited in a seeded random order
and read the freshest labels, which avoids the bipartite oscillation of the
fully synchronous variant.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..graph import Graph
from .partition import Partition

__all__ = ["PLP"]


class PLP:
    """Label propagation community detection.

    Parameters
    ----------
    g:
        Undirected graph.
    max_iterations:
        Upper bound on full sweeps.
    update_threshold:
        Stop when fewer than this many nodes changed label in a sweep
        (NetworKit uses ``n / 1e5`` by default; we default to 0 = exact
        convergence, which is appropriate for RIN-sized graphs).
    seed:
        Seed for visit-order permutations (deterministic output).
    """

    def __init__(
        self,
        g: Graph | CSRGraph,
        *,
        max_iterations: int = 100,
        update_threshold: int = 0,
        seed: int | None = 42,
    ):
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self._g = g
        self._max_iterations = max_iterations
        self._threshold = max(0, int(update_threshold))
        self._seed = seed
        self._partition: Partition | None = None
        self._iterations = 0

    def run(self) -> "PLP":
        """Execute label propagation until stable."""
        csr = self._g.csr() if isinstance(self._g, Graph) else self._g
        if csr.directed:
            raise ValueError("PLP requires an undirected graph")
        n = csr.n
        rng = np.random.default_rng(self._seed)
        labels = np.arange(n, dtype=np.int64)
        self._iterations = 0
        for _ in range(self._max_iterations):
            self._iterations += 1
            changed = 0
            for u in rng.permutation(n):
                lo, hi = csr.indptr[u], csr.indptr[u + 1]
                if lo == hi:
                    continue
                nbr_labels = labels[csr.indices[lo:hi]]
                wts = csr.weights[lo:hi]
                # Segment-sum neighbour label weights (sparse id space).
                order = np.argsort(nbr_labels, kind="stable")
                sorted_labels = nbr_labels[order]
                starts = np.concatenate(
                    [[0], np.flatnonzero(np.diff(sorted_labels)) + 1]
                )
                sums = np.add.reduceat(wts[order], starts)
                candidates = sorted_labels[starts]
                best_weight = sums.max()
                # Deterministic tie-break: smallest label among the heaviest
                # (ties are resolved randomly in NetworKit; a fixed rule
                # keeps results reproducible for tests).
                heaviest = candidates[sums >= best_weight - 1e-12]
                new_label = int(heaviest.min())
                current = int(labels[u])
                current_weight = (
                    float(sums[np.searchsorted(candidates, current)])
                    if current in candidates
                    else 0.0
                )
                if new_label != current and best_weight > current_weight + 1e-12:
                    labels[u] = new_label
                    changed += 1
            if changed <= self._threshold:
                break
        self._partition = Partition(labels).compact()
        return self

    def get_partition(self) -> Partition:
        """The detected communities; requires :meth:`run`."""
        if self._partition is None:
            raise RuntimeError("call run() first")
        return self._partition

    def number_of_iterations(self) -> int:
        """Sweeps executed by the last :meth:`run`."""
        if self._partition is None:
            raise RuntimeError("call run() first")
        return self._iterations
