"""ParallelLeiden — Leiden algorithm (Traag, Waltman & van Eck 2019).

Louvain with an extra *refinement* phase per level: after the greedy local
move, each community is internally re-partitioned starting from singletons
with moves constrained to stay inside the community. Aggregation then
contracts the **refined** partition while the move-phase communities seed
the next level — this is what guarantees well-connected communities.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..graph import Graph
from ._engine import LevelState, coarsen, local_move_modularity
from .partition import Partition

__all__ = ["ParallelLeiden"]


def _refine(
    state: LevelState,
    move_labels: np.ndarray,
    *,
    gamma: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Constrained singleton merge phase within each move-phase community.

    Every node starts in its own refined block; a node may merge only into
    refined blocks of nodes sharing its move-phase community, and only when
    the modularity gain is positive. Returns refined labels.
    """
    n = state.adj.shape[0]
    refined = np.arange(n, dtype=np.int64)
    volumes = state.strength.astype(np.float64).copy()  # singleton volumes
    m = state.two_m / 2.0
    if m <= 0:
        return refined
    for u in rng.permutation(n):
        # Leiden rule: only nodes still in a singleton refined block may
        # merge; a node whose block already absorbed others stays put.
        if volumes[u] > state.strength[u] + 1e-12:
            continue
        lo, hi = state.adj.indptr[u], state.adj.indptr[u + 1]
        nbrs = state.adj.indices[lo:hi]
        wts = state.adj.data[lo:hi]
        mask = (nbrs != u) & (move_labels[nbrs] == move_labels[u])
        if not mask.any():
            continue
        cand = refined[nbrs[mask]]
        order = np.argsort(cand, kind="stable")
        cand_sorted = cand[order]
        starts = np.concatenate([[0], np.flatnonzero(np.diff(cand_sorted)) + 1])
        blocks = cand_sorted[starts]
        weights = np.add.reduceat(wts[mask][order], starts)
        a = refined[u]
        k_u = state.strength[u]
        idx_a = np.flatnonzero(blocks == a)
        w_ua = float(weights[idx_a[0]]) if len(idx_a) else 0.0
        vol_a = volumes[a] - k_u
        best_gain, best_block = 0.0, a
        for c, w_uc in zip(blocks, weights):
            if c == a:
                continue
            gain = (w_uc - w_ua) / m - gamma * k_u * (volumes[c] - vol_a) / (
                2.0 * m * m
            )
            if gain > best_gain + 1e-12:
                best_gain, best_block = gain, int(c)
        if best_block != a:
            volumes[a] -= k_u
            volumes[best_block] += k_u
            refined[u] = best_block
    return refined


class ParallelLeiden:
    """Leiden community detection (modularity objective).

    Parameters
    ----------
    g:
        Undirected graph.
    gamma:
        Resolution parameter.
    iterations:
        Number of full Leiden passes over the hierarchy (the original paper
        iterates until stable; 3 passes are plenty for RIN-scale graphs).
    seed:
        RNG seed for visit orders (deterministic output).
    """

    def __init__(
        self,
        g: Graph | CSRGraph,
        *,
        gamma: float = 1.0,
        iterations: int = 3,
        seed: int | None = 42,
    ):
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self._g = g
        self._gamma = float(gamma)
        self._iterations = iterations
        self._seed = seed
        self._partition: Partition | None = None

    def run(self) -> "ParallelLeiden":
        """Execute the Leiden passes."""
        csr = self._g.csr() if isinstance(self._g, Graph) else self._g
        if csr.directed:
            raise ValueError("ParallelLeiden requires an undirected graph")
        rng = np.random.default_rng(self._seed)
        n0 = csr.n
        best = np.arange(n0, dtype=np.int64)
        for _ in range(self._iterations):
            best = self._one_pass(csr.to_scipy().copy(), best, rng)
        self._partition = Partition(best).compact()
        return self

    def _one_pass(
        self, adj, init_labels: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n0 = adj.shape[0]
        # Mapping from original nodes to current-level nodes.
        to_level = np.arange(n0, dtype=np.int64)
        # Current-level seed labels (from the previous pass).
        seed_labels = init_labels.copy()
        final = init_labels.copy()
        while True:
            state = LevelState.from_adjacency(adj)
            move_labels, moved = local_move_modularity(
                state, gamma=self._gamma, rng=rng, labels=seed_labels
            )
            final = move_labels[to_level]
            uniq = len(np.unique(move_labels)) if len(move_labels) else 0
            if not moved or uniq <= 1 or uniq == adj.shape[0]:
                break
            refined = _refine(state, move_labels, gamma=self._gamma, rng=rng)
            adj, dense_refined = coarsen(adj, refined)
            # Seed the coarse level with the move-phase communities: each
            # refined block lies inside exactly one move community.
            k = adj.shape[0]
            coarse_seed = np.zeros(k, dtype=np.int64)
            coarse_seed[dense_refined] = move_labels
            seed_labels = coarse_seed
            to_level = dense_refined[to_level]
        return final

    def get_partition(self) -> Partition:
        """The detected communities; requires :meth:`run`."""
        if self._partition is None:
            raise RuntimeError("call run() first")
        return self._partition
