"""Shared Louvain-style engine: local move + coarsening on scipy CSR.

PLM, ParallelLeiden and LouvainMapEquation all share this machinery; they
differ in the move objective (modularity vs. map equation) and in whether a
refinement phase runs between local move and coarsening.

The engine works directly on a symmetric ``scipy.sparse.csr_matrix`` whose
diagonal stores (twice the) intra-node self-loop weight created by
coarsening — the public :class:`~repro.graphkit.graph.Graph` stays
loop-free, all looped intermediates live only inside this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

__all__ = [
    "LevelState",
    "local_move_modularity",
    "local_move_map_equation",
    "coarsen",
    "flat_labels",
]


@dataclass
class LevelState:
    """Adjacency + cached per-node quantities for one hierarchy level."""

    adj: sparse.csr_matrix  # symmetric, possibly with diagonal self-loops
    strength: np.ndarray  # weighted degree incl. self-loop weight (k_u)
    self_loops: np.ndarray  # per-node self-loop weight (w_uu)
    two_m: float  # total arc weight == sum of strengths

    @classmethod
    def from_adjacency(cls, adj: sparse.csr_matrix) -> "LevelState":
        adj = adj.tocsr()
        adj.sum_duplicates()
        strength = np.asarray(adj.sum(axis=1)).ravel()
        self_loops = adj.diagonal()
        return cls(adj, strength, self_loops, float(strength.sum()))


def _neighbor_community_weights(
    state: LevelState, u: int, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float]:
    """Distinct neighbour communities of ``u`` and arc weight into each.

    Returns ``(communities, weights, w_self)`` where ``w_self`` is the
    self-loop weight of ``u`` (excluded from the community weights).
    """
    lo, hi = state.adj.indptr[u], state.adj.indptr[u + 1]
    nbrs = state.adj.indices[lo:hi]
    wts = state.adj.data[lo:hi]
    mask = nbrs != u
    comms = labels[nbrs[mask]]
    if len(comms) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0), float(state.self_loops[u])
    # Segment-sum by community id via sort+reduceat (communities are sparse
    # in id space, so bincount over the full range would waste memory).
    order = np.argsort(comms, kind="stable")
    comms_sorted = comms[order]
    wts_sorted = wts[mask][order]
    boundaries = np.flatnonzero(np.diff(comms_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    uniq = comms_sorted[starts]
    sums = np.add.reduceat(wts_sorted, starts)
    return uniq.astype(np.int64), sums, float(state.self_loops[u])


def local_move_modularity(
    state: LevelState,
    *,
    gamma: float = 1.0,
    rng: np.random.Generator,
    max_sweeps: int = 32,
    labels: np.ndarray | None = None,
) -> tuple[np.ndarray, bool]:
    """Greedy modularity local move; returns (labels, any_node_moved).

    Gain of moving ``u`` from community ``a`` to ``b`` (volumes exclude u):

        ΔQ = (w_ub − w_ua)/m − γ k_u (vol_b − vol_a) / (2 m²)

    Nodes are visited in a seeded random order per sweep, mirroring the
    shared-memory PLM where per-thread visit order is nondeterministic but
    seed-reproducible here.
    """
    n = state.adj.shape[0]
    labels = np.arange(n, dtype=np.int64) if labels is None else labels.copy()
    if state.two_m <= 0 or n == 0:
        return labels, False
    m = state.two_m / 2.0
    volumes = np.bincount(labels, weights=state.strength, minlength=n).astype(
        np.float64
    )
    moved_any = False
    for _ in range(max_sweeps):
        moved = 0
        for u in rng.permutation(n):
            a = labels[u]
            k_u = state.strength[u]
            comms, weights, _ = _neighbor_community_weights(state, u, labels)
            # weight from u into its own community (u excluded)
            idx_a = np.flatnonzero(comms == a)
            w_ua = float(weights[idx_a[0]]) if len(idx_a) else 0.0
            vol_a = volumes[a] - k_u
            best_gain, best_comm = 0.0, a
            for c, w_uc in zip(comms, weights):
                if c == a:
                    continue
                gain = (w_uc - w_ua) / m - gamma * k_u * (volumes[c] - vol_a) / (
                    2.0 * m * m
                )
                if gain > best_gain + 1e-12:
                    best_gain, best_comm = gain, int(c)
            if best_comm != a:
                volumes[a] -= k_u
                volumes[best_comm] += k_u
                labels[u] = best_comm
                moved += 1
        if moved:
            moved_any = True
        else:
            break
    return labels, moved_any


def local_move_map_equation(
    state: LevelState,
    *,
    rng: np.random.Generator,
    max_sweeps: int = 32,
    labels: np.ndarray | None = None,
) -> tuple[np.ndarray, bool]:
    """Greedy map-equation local move; returns (labels, any_node_moved).

    Maintains per-module volume and cut; the ΔL of a candidate move touches
    only the plogp terms of the two affected modules and the total exit
    rate, evaluated in O(1) per candidate.
    """
    n = state.adj.shape[0]
    labels = np.arange(n, dtype=np.int64) if labels is None else labels.copy()
    two_m = state.two_m
    if two_m <= 0 or n == 0:
        return labels, False

    volumes = np.bincount(labels, weights=state.strength, minlength=n).astype(
        np.float64
    )
    # cut_c = volume_c - 2 * intra_c ; start from current labels
    rows = np.repeat(np.arange(n), np.diff(state.adj.indptr))
    same = labels[rows] == labels[state.adj.indices]
    off_diag = rows != state.adj.indices
    # Arc weight strictly inside each module: off-diagonal same-module arcs
    # (each undirected edge contributes both directions) plus the diagonal
    # self-loop weight created by coarsening.
    intra_arcs = np.bincount(
        labels[rows[same & off_diag]],
        weights=state.adj.data[same & off_diag],
        minlength=n,
    ) + np.bincount(labels, weights=state.self_loops, minlength=n)
    cuts = volumes - intra_arcs

    def plogp(x: float) -> float:
        return x * np.log2(x) if x > 1e-15 else 0.0

    q_total = float(cuts.sum()) / two_m

    def module_terms(vol: float, cut: float) -> float:
        q = cut / two_m
        return -2.0 * plogp(q) + plogp(q + vol / two_m)

    moved_any = False
    for _ in range(max_sweeps):
        moved = 0
        for u in rng.permutation(n):
            a = labels[u]
            k_u = float(state.strength[u])
            loop_u = float(state.self_loops[u])
            comms, weights, _ = _neighbor_community_weights(state, u, labels)
            idx_a = np.flatnonzero(comms == a)
            w_ua = float(weights[idx_a[0]]) if len(idx_a) else 0.0
            # State of module a without u: removing u removes its strength
            # from the volume; the cut loses u's external arcs and gains the
            # arcs u had into a.
            # Arcs from u leaving module a (k_u counts the diagonal once).
            ext_u = k_u - loop_u - w_ua
            vol_a_wo = volumes[a] - k_u
            cut_a_wo = cuts[a] - ext_u + w_ua
            base_a = module_terms(volumes[a], cuts[a])
            best_delta, best_comm, best_new = 0.0, a, None
            for c, w_uc in zip(comms, weights):
                if c == a:
                    continue
                vol_c_new = volumes[c] + k_u
                # u joins c: c's cut gains u's arcs that leave c
                cut_c_new = cuts[c] + (k_u - loop_u - w_uc) - w_uc
                dq = (cut_a_wo + cut_c_new - cuts[a] - cuts[c]) / two_m
                q_new = q_total + dq
                delta = (
                    (plogp(q_new) - plogp(q_total))
                    + module_terms(vol_a_wo, cut_a_wo)
                    + module_terms(vol_c_new, cut_c_new)
                    - base_a
                    - module_terms(volumes[c], cuts[c])
                )
                if delta < best_delta - 1e-12:
                    best_delta = delta
                    best_comm = int(c)
                    best_new = (vol_a_wo, cut_a_wo, vol_c_new, cut_c_new, q_new)
            if best_comm != a and best_new is not None:
                volumes[a], cuts[a] = best_new[0], best_new[1]
                volumes[best_comm], cuts[best_comm] = best_new[2], best_new[3]
                q_total = best_new[4]
                labels[u] = best_comm
                moved += 1
        if moved:
            moved_any = True
        else:
            break
    return labels, moved_any


def coarsen(
    adj: sparse.csr_matrix, labels: np.ndarray
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Contract communities into super-nodes.

    Returns the coarse adjacency (with self-loops carrying intra-community
    weight) and the dense relabelling applied to ``labels``.
    """
    uniq, dense = np.unique(labels, return_inverse=True)
    k = len(uniq)
    n = adj.shape[0]
    assign = sparse.csr_matrix(
        (np.ones(n), (np.arange(n), dense)), shape=(n, k)
    )
    coarse = (assign.T @ adj @ assign).tocsr()
    coarse.sum_duplicates()
    return coarse, dense.astype(np.int64)


def flat_labels(levels: list[np.ndarray]) -> np.ndarray:
    """Compose per-level labelings into labels on the original nodes."""
    if not levels:
        raise ValueError("need at least one level")
    labels = levels[0]
    for nxt in levels[1:]:
        labels = nxt[labels]
    return labels
