"""Community detection (NetworKit ``community`` module analog).

Algorithms: :class:`PLM` (parallel Louvain), :class:`PLP` (label
propagation), :class:`ParallelLeiden`, :class:`LouvainMapEquation`;
quality measures (modularity, coverage, map equation) and partition
similarity (McDaid NMI).
"""

from .leiden import ParallelLeiden
from .mapequation import LouvainMapEquation
from .nmi import NMIDistance, entropy, mutual_information, nmi
from .partition import Partition
from .plm import PLM
from .plp import PLP
from .quality import Coverage, Modularity, coverage, map_equation, modularity

__all__ = [
    "PLM",
    "PLP",
    "ParallelLeiden",
    "LouvainMapEquation",
    "Partition",
    "Modularity",
    "Coverage",
    "NMIDistance",
    "modularity",
    "coverage",
    "map_equation",
    "nmi",
    "mutual_information",
    "entropy",
]
