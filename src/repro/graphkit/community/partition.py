"""Partition data structure (NetworKit ``Partition`` analog).

A partition assigns every node exactly one block id. Blocks ids are dense
after :meth:`Partition.compact`. Used by all community-detection algorithms
and by the quality/NMI measures.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["Partition"]


class Partition:
    """Disjoint blocks over nodes ``0..n-1``.

    Parameters
    ----------
    labels:
        Either an int (number of nodes; all nodes start in singleton blocks)
        or an array of per-node block labels.
    """

    __slots__ = ("_labels",)

    def __init__(self, labels: int | Iterable[int] | np.ndarray):
        if isinstance(labels, (int, np.integer)):
            if labels < 0:
                raise ValueError(f"node count must be non-negative, got {labels}")
            self._labels = np.arange(int(labels), dtype=np.int64)
        else:
            arr = np.asarray(list(labels) if not isinstance(labels, np.ndarray) else labels)
            arr = arr.astype(np.int64, copy=True)
            if arr.ndim != 1:
                raise ValueError("labels must be one-dimensional")
            if len(arr) and arr.min() < 0:
                raise ValueError("block labels must be non-negative")
            self._labels = arr

    # ------------------------------------------------------------------
    @classmethod
    def from_blocks(cls, n: int, blocks: Iterable[Iterable[int]]) -> "Partition":
        """Build from explicit node groups; ungrouped nodes get singletons."""
        labels = np.full(n, -1, dtype=np.int64)
        for b, nodes in enumerate(blocks):
            for u in nodes:
                if not 0 <= u < n:
                    raise IndexError(f"node {u} out of range [0, {n})")
                if labels[u] != -1:
                    raise ValueError(f"node {u} assigned to two blocks")
                labels[u] = b
        next_label = int(labels.max()) + 1 if len(labels) else 0
        for u in np.flatnonzero(labels == -1):
            labels[u] = next_label
            next_label += 1
        return cls(labels)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._labels)

    def __getitem__(self, u: int) -> int:
        return int(self._labels[u])

    def __iter__(self) -> Iterator[int]:
        return iter(int(x) for x in self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        if len(self) != len(other):
            return False
        return bool(
            np.array_equal(self.compact().labels(), other.compact().labels())
        )

    def __hash__(self) -> int:  # partitions are mutable-ish; identity hash
        return id(self)

    def labels(self) -> np.ndarray:
        """The underlying per-node label vector (no copy)."""
        return self._labels

    def subset_of(self, u: int) -> int:
        """Block id of node ``u`` (NetworKit ``subsetOf`` naming)."""
        return int(self._labels[u])

    def number_of_subsets(self) -> int:
        """Number of distinct blocks."""
        return int(len(np.unique(self._labels))) if len(self._labels) else 0

    def move_to_subset(self, block: int, u: int) -> None:
        """Reassign node ``u`` to ``block``."""
        if block < 0:
            raise ValueError("block labels must be non-negative")
        self._labels[u] = block

    def subset_sizes(self) -> dict[int, int]:
        """Mapping block label -> size."""
        uniq, counts = np.unique(self._labels, return_counts=True)
        return {int(b): int(c) for b, c in zip(uniq, counts)}

    def members(self, block: int) -> np.ndarray:
        """Sorted node ids in ``block``."""
        return np.flatnonzero(self._labels == block).astype(np.int64)

    def subsets(self) -> list[np.ndarray]:
        """All blocks as arrays of node ids, ordered by compact label."""
        uniq = np.unique(self._labels)
        return [self.members(int(b)) for b in uniq]

    def compact(self) -> "Partition":
        """Return a copy with labels renumbered densely by first appearance."""
        if len(self._labels) == 0:
            return Partition(self._labels.copy())
        _, first_pos, inverse = np.unique(
            self._labels, return_index=True, return_inverse=True
        )
        # np.unique sorts by label value; renumber by order of first node
        # appearance for a canonical form independent of raw label values.
        order = np.argsort(first_pos, kind="stable")
        rank = np.empty_like(order)
        rank[order] = np.arange(len(order))
        return Partition(rank[inverse])

    def copy(self) -> "Partition":
        """Deep copy."""
        return Partition(self._labels.copy())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition(n={len(self._labels)}, blocks={self.number_of_subsets()})"
