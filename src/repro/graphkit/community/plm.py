"""PLM — parallel Louvain method (Staudt & Meyerhenke).

Multi-level modularity maximization: greedy local move, coarsening,
recursion, optional refinement sweep ("prolong and refine") back on the
finer levels — the algorithm behind ``networkit.community.PLM``.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..graph import Graph
from ._engine import LevelState, coarsen, local_move_modularity
from .partition import Partition

__all__ = ["PLM"]


class PLM:
    """Parallel Louvain method for modularity-based community detection.

    Parameters
    ----------
    g:
        Undirected graph.
    refine:
        Run an extra local-move sweep after prolonging each coarse solution
        back to the finer level (NetworKit's ``refine`` flag).
    gamma:
        Modularity resolution parameter.
    turbo:
        Accepted for NetworKit API compatibility (vectorized move phase is
        always on here).
    seed:
        Seed for the per-sweep node permutations; fixed seed gives a fully
        deterministic partition.

    Examples
    --------
    >>> from repro.graphkit import Graph
    >>> from repro.graphkit.community import PLM
    >>> g = Graph.from_edges(6, [(0,1),(0,2),(1,2),(3,4),(3,5),(4,5),(2,3)])
    >>> part = PLM(g, seed=1).run().get_partition()
    >>> part.number_of_subsets()
    2
    """

    def __init__(
        self,
        g: Graph | CSRGraph,
        *,
        refine: bool = False,
        gamma: float = 1.0,
        turbo: bool = True,
        seed: int | None = 42,
    ):
        self._g = g
        self._refine = bool(refine)
        self._gamma = float(gamma)
        self._turbo = bool(turbo)
        self._seed = seed
        self._partition: Partition | None = None
        self._levels = 0

    def run(self) -> "PLM":
        """Execute the multi-level optimization."""
        csr = self._g.csr() if isinstance(self._g, Graph) else self._g
        if csr.directed:
            raise ValueError("PLM requires an undirected graph")
        rng = np.random.default_rng(self._seed)
        adj = csr.to_scipy().copy()
        n0 = csr.n

        labels_per_level: list[np.ndarray] = []
        level_adjs: list = []
        while True:
            state = LevelState.from_adjacency(adj)
            labels, moved = local_move_modularity(
                state, gamma=self._gamma, rng=rng
            )
            uniq = len(np.unique(labels)) if len(labels) else 0
            labels_per_level.append(labels)
            level_adjs.append(adj)
            if not moved or uniq == adj.shape[0] or uniq <= 1:
                break
            adj, dense = coarsen(adj, labels)
            labels_per_level[-1] = dense  # store dense relabelling
        self._levels = len(labels_per_level)

        # Prolong coarsest labels down to the original nodes, optionally
        # refining with one more move sweep at each finer level.
        labels = labels_per_level[-1]
        for level in range(len(labels_per_level) - 2, -1, -1):
            labels = labels[labels_per_level[level]]
            if self._refine:
                state = LevelState.from_adjacency(level_adjs[level])
                labels, _ = local_move_modularity(
                    state, gamma=self._gamma, rng=rng, labels=labels
                )
        assert len(labels) == n0, "prolongation must end on the original nodes"
        self._partition = Partition(labels).compact()
        return self

    def get_partition(self) -> Partition:
        """The detected communities; requires :meth:`run`."""
        if self._partition is None:
            raise RuntimeError("call run() first")
        return self._partition

    def number_of_levels(self) -> int:
        """Hierarchy depth used by the last :meth:`run`."""
        if self._partition is None:
            raise RuntimeError("call run() first")
        return self._levels
