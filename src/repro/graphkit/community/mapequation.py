"""LouvainMapEquation — Louvain local moves driven by the map equation.

The parallel Louvain/map-equation combination added to NetworKit (Bohlin et
al. framework; see paper §II-A): identical multi-level skeleton to PLM but
the move objective minimizes the description length ``L(M)`` of a random
walk (Rosvall-Bergstrom map equation) instead of maximizing modularity.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..graph import Graph
from ._engine import LevelState, coarsen, local_move_map_equation
from .partition import Partition

__all__ = ["LouvainMapEquation"]


class LouvainMapEquation:
    """Map-equation community detection with Louvain-style levels.

    Parameters
    ----------
    g:
        Undirected graph.
    hierarchical:
        Accepted for NetworKit API compatibility (two-level codebook only).
    max_iterations:
        Max local-move sweeps per level.
    seed:
        RNG seed for visit orders (deterministic output).
    """

    def __init__(
        self,
        g: Graph | CSRGraph,
        *,
        hierarchical: bool = False,
        max_iterations: int = 32,
        seed: int | None = 42,
    ):
        self._g = g
        self._hierarchical = hierarchical
        self._max_iterations = max_iterations
        self._seed = seed
        self._partition: Partition | None = None

    def run(self) -> "LouvainMapEquation":
        """Execute the multi-level optimization."""
        csr = self._g.csr() if isinstance(self._g, Graph) else self._g
        if csr.directed:
            raise ValueError("LouvainMapEquation requires an undirected graph")
        rng = np.random.default_rng(self._seed)
        adj = csr.to_scipy().copy()
        n0 = csr.n

        mappings: list[np.ndarray] = []
        while True:
            state = LevelState.from_adjacency(adj)
            labels, moved = local_move_map_equation(
                state, rng=rng, max_sweeps=self._max_iterations
            )
            uniq = len(np.unique(labels)) if len(labels) else 0
            if not moved or uniq == adj.shape[0] or uniq <= 1:
                mappings.append(labels)
                break
            adj, dense = coarsen(adj, labels)
            mappings.append(dense)

        labels = mappings[-1]
        for level in range(len(mappings) - 2, -1, -1):
            labels = labels[mappings[level]]
        assert len(labels) == n0
        self._partition = Partition(labels).compact()
        return self

    def get_partition(self) -> Partition:
        """The detected communities; requires :meth:`run`."""
        if self._partition is None:
            raise RuntimeError("call run() first")
        return self._partition
