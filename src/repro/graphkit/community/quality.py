"""Partition quality measures: modularity, coverage, map equation.

All measures consume the CSR snapshot once and reduce with vectorized
``np.bincount`` segment sums — no per-edge Python loops.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..graph import Graph
from .partition import Partition

__all__ = ["modularity", "coverage", "map_equation", "Modularity", "Coverage"]


def _csr(g: Graph | CSRGraph) -> CSRGraph:
    return g.csr() if isinstance(g, Graph) else g


def _block_aggregates(
    csr: CSRGraph, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float]:
    """Per-block (intra-edge weight, total volume) and total edge weight m.

    ``intra`` counts each undirected intra-block edge once; ``volume`` is the
    sum of weighted degrees of the block's nodes (2m summed over blocks).
    """
    n = csr.n
    if len(labels) != n:
        raise ValueError(f"partition covers {len(labels)} nodes, graph has {n}")
    nblocks = int(labels.max()) + 1 if n else 0
    # Arc endpoints: row index per stored arc.
    rows = np.repeat(np.arange(n), np.diff(csr.indptr))
    same = labels[rows] == labels[csr.indices]
    intra = np.bincount(
        labels[rows][same], weights=csr.weights[same], minlength=nblocks
    )
    volume = np.bincount(labels, weights=csr.weighted_degrees(), minlength=nblocks)
    two_m = float(csr.weights.sum())  # undirected: each edge stored twice
    return intra / 2.0, volume, two_m / 2.0


def modularity(
    g: Graph | CSRGraph, partition: Partition, *, gamma: float = 1.0
) -> float:
    """Newman modularity ``Q = Σ_c [ e_c/m − γ (v_c / 2m)² ]``.

    ``e_c`` is intra-block edge weight, ``v_c`` block volume, ``γ`` the
    resolution parameter (1.0 = classic modularity).
    """
    csr = _csr(g)
    if csr.directed:
        raise ValueError("modularity is defined here for undirected graphs")
    labels = partition.compact().labels()
    if csr.m == 0:
        return 0.0
    intra, volume, m = _block_aggregates(csr, labels)
    return float(np.sum(intra / m) - gamma * np.sum((volume / (2.0 * m)) ** 2))


def coverage(g: Graph | CSRGraph, partition: Partition) -> float:
    """Fraction of edge weight that falls inside blocks."""
    csr = _csr(g)
    labels = partition.compact().labels()
    if csr.m == 0:
        return 0.0
    intra, _, m = _block_aggregates(csr, labels)
    return float(np.sum(intra) / m)


def _plogp(x: np.ndarray | float) -> np.ndarray | float:
    """``x * log2(x)`` with the 0 log 0 = 0 convention."""
    x = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(x)
    mask = x > 0
    out[mask] = x[mask] * np.log2(x[mask])
    return out if out.ndim else float(out)


def map_equation(g: Graph | CSRGraph, partition: Partition) -> float:
    """The map equation ``L(M)`` (bits) for an undirected graph.

    Uses the expanded form (Rosvall & Bergstrom)::

        L(M) = plogp(q) - 2 Σ_i plogp(q_i) + Σ_i plogp(p_i) - Σ_α plogp(p_α)

    with node visit rates ``p_α = k_α / 2m``, module exit rates
    ``q_i = cut_i / 2m`` and ``p_i = q_i + Σ_{α∈i} p_α``.  Lower is better.
    """
    csr = _csr(g)
    if csr.directed:
        raise ValueError("map equation implemented for undirected graphs")
    labels = partition.compact().labels()
    two_m = float(csr.weights.sum())
    if two_m == 0.0:
        return 0.0
    intra, volume, _ = _block_aggregates(csr, labels)
    p_nodes = csr.weighted_degrees() / two_m
    p_modules = volume / two_m
    cut = volume - 2.0 * intra  # weight of arcs leaving each module
    q_modules = cut / two_m
    q_total = float(q_modules.sum())
    term_index = _plogp(q_total) - 2.0 * float(np.sum(_plogp(q_modules)))
    term_modules = float(np.sum(_plogp(q_modules + p_modules)))
    term_nodes = float(np.sum(_plogp(p_nodes)))
    return term_index + term_modules - term_nodes


class Modularity:
    """NetworKit-style quality runner: ``Modularity().get_quality(zeta, G)``."""

    def __init__(self, *, gamma: float = 1.0):
        self._gamma = gamma

    def get_quality(self, partition: Partition, g: Graph | CSRGraph) -> float:
        """Modularity of ``partition`` on ``g``."""
        return modularity(g, partition, gamma=self._gamma)


class Coverage:
    """NetworKit-style coverage runner."""

    def get_quality(self, partition: Partition, g: Graph | CSRGraph) -> float:
        """Coverage of ``partition`` on ``g``."""
        return coverage(g, partition)
