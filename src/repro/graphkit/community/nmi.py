"""Normalized Mutual Information between partitions (McDaid et al. 2011).

For disjoint partitions the McDaid NMI_max reduces to
``I(X;Y) / max(H(X), H(Y))``; alternative normalizations are exposed for
completeness (``'arithmetic'`` matches sklearn's default ``'max'``-free
variant, ``'joint'`` gives the NID-style normalization).
"""

from __future__ import annotations

import numpy as np

from .partition import Partition

__all__ = ["NMIDistance", "nmi", "mutual_information", "entropy"]

_NORMS = ("max", "min", "arithmetic", "geometric", "joint")


def _contingency(p1: Partition, p2: Partition) -> np.ndarray:
    if len(p1) != len(p2):
        raise ValueError(
            f"partitions cover different node counts: {len(p1)} vs {len(p2)}"
        )
    a = p1.compact().labels()
    b = p2.compact().labels()
    ka = int(a.max()) + 1 if len(a) else 0
    kb = int(b.max()) + 1 if len(b) else 0
    if ka == 0 or kb == 0:
        return np.zeros((0, 0))
    # Joint histogram via a single bincount on the combined key.
    joint = np.bincount(a * kb + b, minlength=ka * kb).reshape(ka, kb)
    return joint.astype(np.float64)


def entropy(p: Partition) -> float:
    """Shannon entropy (bits) of the block-size distribution."""
    n = len(p)
    if n == 0:
        return 0.0
    sizes = np.asarray(list(p.subset_sizes().values()), dtype=np.float64)
    probs = sizes / n
    nz = probs[probs > 0]
    return float(-np.sum(nz * np.log2(nz)))


def mutual_information(p1: Partition, p2: Partition) -> float:
    """Mutual information (bits) between two partitions."""
    joint = _contingency(p1, p2)
    n = joint.sum()
    if n == 0:
        return 0.0
    pij = joint / n
    pi = pij.sum(axis=1, keepdims=True)
    pj = pij.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(pij > 0, pij / (pi * pj), 1.0)
        terms = np.where(pij > 0, pij * np.log2(ratio), 0.0)
    return float(max(terms.sum(), 0.0))


def nmi(p1: Partition, p2: Partition, *, normalization: str = "max") -> float:
    """Normalized mutual information in [0, 1].

    ``normalization='max'`` is the McDaid et al. correction used by
    NetworKit's NMIDistance.
    """
    if normalization not in _NORMS:
        raise ValueError(f"unknown normalization {normalization!r}; use {_NORMS}")
    mi = mutual_information(p1, p2)
    h1, h2 = entropy(p1), entropy(p2)
    if h1 == 0.0 and h2 == 0.0:
        # Both partitions are single blocks: identical by convention.
        return 1.0
    if normalization == "max":
        denom = max(h1, h2)
    elif normalization == "min":
        denom = min(h1, h2)
    elif normalization == "arithmetic":
        denom = (h1 + h2) / 2.0
    elif normalization == "geometric":
        denom = float(np.sqrt(h1 * h2))
    else:  # joint
        denom = h1 + h2 - mi
    if denom <= 0.0:
        return 0.0
    return float(min(mi / denom, 1.0))


class NMIDistance:
    """NetworKit-style dissimilarity runner: ``1 - NMI_max``."""

    def get_dissimilarity(
        self, _g: object, p1: Partition, p2: Partition
    ) -> float:
        """Dissimilarity in [0, 1]; the graph argument is unused (API parity)."""
        return 1.0 - nmi(p1, p2, normalization="max")
