"""Graph input/output (METIS, edge list, GML) + NetworKit-style dispatcher."""

from __future__ import annotations

import os
from enum import Enum

from ..graph import Graph
from .edgelist import read_edgelist, write_edgelist
from .gml import read_gml, write_gml
from .metis import read_metis, write_metis

__all__ = [
    "Format",
    "read_graph",
    "readGraph",
    "write_graph",
    "read_metis",
    "write_metis",
    "read_edgelist",
    "write_edgelist",
    "read_gml",
    "write_gml",
]


class Format(Enum):
    """Supported graph file formats (NetworKit ``nk.Format`` analog)."""

    METIS = "metis"
    EdgeList = "edgelist"
    GML = "gml"


def read_graph(path: str | os.PathLike, fmt: Format = Format.METIS, **kwargs) -> Graph:
    """Read a graph in the given format (paper Listing 1 entry point)."""
    if fmt is Format.METIS:
        return read_metis(path)
    if fmt is Format.EdgeList:
        return read_edgelist(path, **kwargs)
    if fmt is Format.GML:
        return read_gml(path)
    raise ValueError(f"unsupported format: {fmt}")


def readGraph(path, fmt: Format = Format.METIS, **kwargs) -> Graph:  # noqa: N802
    """NetworKit-spelled alias of :func:`read_graph`."""
    return read_graph(path, fmt, **kwargs)


def write_graph(g: Graph, path: str | os.PathLike, fmt: Format = Format.METIS) -> None:
    """Write a graph in the given format."""
    if fmt is Format.METIS:
        write_metis(g, path)
    elif fmt is Format.EdgeList:
        write_edgelist(g, path)
    elif fmt is Format.GML:
        write_gml(g, path)
    else:
        raise ValueError(f"unsupported format: {fmt}")
