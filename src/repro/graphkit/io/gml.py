"""Minimal GML (Graph Modelling Language) reader/writer.

Supports the subset produced by Gephi/Cytoscape exports that RIN users
encounter: ``graph [ directed 0 node [ id .. label .. ] edge [ source ..
target .. weight? .. ] ]``.
"""

from __future__ import annotations

import os
import re

from ..graph import Graph

__all__ = ["read_gml", "write_gml"]

_TOKEN = re.compile(r"\[|\]|\"[^\"]*\"|[^\s\[\]]+")


def _tokenize(text: str) -> list[str]:
    return _TOKEN.findall(text)


def _parse_block(tokens: list[str], pos: int) -> tuple[dict, int]:
    """Parse tokens after an opening '[' into a dict; lists collapse to last."""
    out: dict[str, object] = {}
    items: list[tuple[str, object]] = []
    while pos < len(tokens):
        tok = tokens[pos]
        if tok == "]":
            out["__items__"] = items
            return out, pos + 1
        key = tok
        pos += 1
        if pos >= len(tokens):
            raise ValueError(f"GML: dangling key {key!r}")
        if tokens[pos] == "[":
            value, pos = _parse_block(tokens, pos + 1)
        else:
            raw = tokens[pos]
            pos += 1
            if raw.startswith('"'):
                value = raw.strip('"')
            else:
                try:
                    value = int(raw)
                except ValueError:
                    try:
                        value = float(raw)
                    except ValueError:
                        value = raw
        items.append((key, value))
        out[key] = value
    out["__items__"] = items
    return out, pos


def read_gml(path: str | os.PathLike) -> Graph:
    """Parse a GML file into a :class:`Graph`."""
    with open(path, "r", encoding="utf-8") as handle:
        tokens = _tokenize(handle.read())
    if len(tokens) < 2 or tokens[0] != "graph" or tokens[1] != "[":
        raise ValueError(f"{path}: expected 'graph [' header")
    block, _ = _parse_block(tokens, 2)
    items = block["__items__"]
    directed = bool(block.get("directed", 0))
    nodes = [v for k, v in items if k == "node"]
    edges = [v for k, v in items if k == "edge"]
    id_map: dict[int, int] = {}
    for i, node in enumerate(nodes):
        if "id" not in node:
            raise ValueError(f"{path}: node without id")
        id_map[int(node["id"])] = i
    weighted = any("weight" in e for e in edges)
    g = Graph(len(nodes), weighted=weighted, directed=directed)
    for e in edges:
        u = id_map[int(e["source"])]
        v = id_map[int(e["target"])]
        w = float(e.get("weight", 1.0))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, w)
    return g


def write_gml(g: Graph, path: str | os.PathLike) -> None:
    """Write a :class:`Graph` as GML."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("graph [\n")
        handle.write(f"  directed {int(g.directed)}\n")
        for u in g.iter_nodes():
            handle.write(f"  node [\n    id {u}\n    label \"{u}\"\n  ]\n")
        for u, v, w in g.iter_weighted_edges():
            handle.write(f"  edge [\n    source {u}\n    target {v}\n")
            if g.weighted:
                handle.write(f"    weight {w}\n")
            handle.write("  ]\n")
        handle.write("]\n")
