"""Whitespace-separated edge-list reader/writer."""

from __future__ import annotations

import os

from ..graph import Graph

__all__ = ["read_edgelist", "write_edgelist"]


def read_edgelist(
    path: str | os.PathLike,
    *,
    directed: bool = False,
    weighted: bool = False,
    comment: str = "#",
) -> Graph:
    """Parse ``u v [w]`` lines; node count is 1 + max id."""
    edges: list[tuple[int, int, float]] = []
    max_node = -1
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            fields = line.split()
            if len(fields) < 2:
                raise ValueError(f"{path}:{lineno}: need at least 'u v'")
            u, v = int(fields[0]), int(fields[1])
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{lineno}: negative node id")
            w = float(fields[2]) if weighted and len(fields) > 2 else 1.0
            edges.append((u, v, w))
            max_node = max(max_node, u, v)
    g = Graph(max_node + 1, weighted=weighted, directed=directed)
    for u, v, w in edges:
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, w)
    return g


def write_edgelist(g: Graph, path: str | os.PathLike) -> None:
    """Write one ``u v [w]`` line per edge."""
    with open(path, "w", encoding="utf-8") as handle:
        if g.weighted:
            for u, v, w in g.iter_weighted_edges():
                handle.write(f"{u} {v} {w}\n")
        else:
            for u, v in g.iter_edges():
                handle.write(f"{u} {v}\n")
