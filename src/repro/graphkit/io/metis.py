"""METIS graph format reader/writer.

The format of the paper's Listing 1 (``nk.readGraph("karate.graph",
nk.Format.METIS)``): a header line ``n m [fmt]`` followed by one line per
node listing its (1-based) neighbours, optionally with edge weights when
``fmt`` ends in 1.
"""

from __future__ import annotations

import os

from ..graph import Graph

__all__ = ["read_metis", "write_metis"]


def read_metis(path: str | os.PathLike) -> Graph:
    """Parse a METIS file into an undirected :class:`Graph`."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [
            line.strip()
            for line in handle
            if line.strip() and not line.lstrip().startswith("%")
        ]
    if not lines:
        raise ValueError(f"{path}: empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise ValueError(f"{path}: METIS header needs 'n m', got {lines[0]!r}")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    has_edge_weights = fmt.endswith("1") and fmt != "0"
    has_node_weights = len(fmt) >= 2 and fmt[-2] == "1"
    if len(lines) - 1 != n:
        raise ValueError(
            f"{path}: header declares {n} nodes but file has {len(lines) - 1} "
            "adjacency lines"
        )
    g = Graph(n, weighted=has_edge_weights)
    for u, line in enumerate(lines[1:]):
        fields = line.split()
        idx = 1 if has_node_weights else 0  # skip node weight field
        step = 2 if has_edge_weights else 1
        while idx < len(fields):
            v = int(fields[idx]) - 1  # METIS is 1-based
            if not 0 <= v < n:
                raise ValueError(f"{path}: neighbour {v + 1} out of range")
            w = float(fields[idx + 1]) if has_edge_weights else 1.0
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v, w)
            idx += step
    if g.number_of_edges() != m:
        raise ValueError(
            f"{path}: header declares {m} edges, parsed {g.number_of_edges()}"
        )
    return g


def write_metis(g: Graph, path: str | os.PathLike) -> None:
    """Write an undirected graph in METIS format."""
    if g.directed:
        raise ValueError("METIS format stores undirected graphs")
    fmt = "001" if g.weighted else "0"
    with open(path, "w", encoding="utf-8") as handle:
        header = f"{g.number_of_nodes()} {g.number_of_edges()}"
        if g.weighted:
            header += f" {fmt}"
        handle.write(header + "\n")
        for u in g.iter_nodes():
            parts = []
            for v in sorted(g.neighbors(u)):
                parts.append(str(v + 1))
                if g.weighted:
                    weight = g.weight(u, v)
                    parts.append(
                        str(int(weight)) if weight == int(weight) else str(weight)
                    )
            handle.write(" ".join(parts) + "\n")
