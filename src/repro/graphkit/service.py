"""The shared long-lived compute service.

The paper's cloud deployment (§III-A) serves many concurrent JupyterHub
sessions from one NetworKit backend; the per-session cost is a solve or
scan *job*, not a worker pool. Before this module every scan call and
every ``engine="process"`` pipeline built (and tore down) its own
:class:`~repro.graphkit.parallel.ShardedExecutor` — pool startup
dominated small jobs and each teardown was a leak hazard.

:class:`ComputeService` owns **one** persistent shared-memory process
pool for the whole process:

* Sessions register with a *budget* (``service.session(name,
  budget_ms=...)``) and submit jobs through leases. A small
  cross-session scheduler orders the pending queue by **deficit fair
  share**: priority is ``spent_ms / budget_ms`` (lower runs sooner, FIFO
  tiebreak), so a session that has consumed little of its budget
  overtakes one that has been hogging the pool.
* :meth:`ComputeService.lease` returns a :class:`ServiceExecutor` that
  duck-types ``ShardedExecutor`` (``share`` / ``cancel_flag`` / ``run``
  / ``submit`` / ``close``), so every existing shard→merge call site
  works unchanged — ``close()`` releases only the lease's datasets and
  flags, never the pool.
* Worker crashes are detected (``BrokenProcessPool``), the pool is
  rebuilt once per crash (generation-guarded, so a burst of failed
  futures from one dead worker triggers one rebuild), and the affected
  jobs are resubmitted with bounded retries.
* The ``workers=0`` serial twin is preserved: a serial service runs
  every job inline on the parent-side arrays, bit-identical to the
  pooled run.

Module-level :func:`get_compute_service` /
:func:`shutdown_compute_service` manage the per-process singleton; an
``atexit`` hook guarantees the pool and every outstanding segment are
released even when no caller ever closes anything.
"""

from __future__ import annotations

import atexit
import itertools
import threading
import time
import weakref
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

import numpy as np

from .parallel import (
    ShardedExecutor,
    SharedCancelFlag,
    SharedDataset,
    _close_resources,
)

__all__ = [
    "ComputeService",
    "ComputeSession",
    "ComputeStats",
    "ServiceExecutor",
    "configure_compute_service",
    "get_compute_service",
    "shutdown_compute_service",
]


class ComputeStats:
    """Counters exposed by :attr:`ComputeService.stats` (test/ops surface)."""

    __slots__ = (
        "pools_started",
        "jobs_submitted",
        "jobs_completed",
        "jobs_failed",
        "resubmissions",
        "worker_crashes",
    )

    def __init__(self) -> None:
        self.pools_started = 0
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.resubmissions = 0
        self.worker_crashes = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy (stable keys, safe to log or diff)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"ComputeStats({inner})"


class ComputeSession:
    """One tenant of the shared service.

    A session carries a *budget*: the scheduler orders pending jobs by
    the fraction of budget already spent (``spent_ms / budget_ms``), so
    budgets are relative weights, not hard caps — a session is never
    refused, only deprioritized once it has out-consumed its share.
    """

    __slots__ = ("name", "budget_ms", "spent_ms", "jobs_submitted", "_closed")

    def __init__(self, name: str, budget_ms: float = 1000.0):
        if budget_ms <= 0:
            raise ValueError(f"budget_ms must be > 0, got {budget_ms}")
        self.name = str(name)
        self.budget_ms = float(budget_ms)
        self.spent_ms = 0.0
        self.jobs_submitted = 0
        self._closed = False

    @property
    def priority(self) -> float:
        """Deficit fair share: fraction of budget consumed (lower first)."""
        return self.spent_ms / self.budget_ms

    def set_budget(self, budget_ms: float) -> None:
        """Re-weight this session live (the cloud layer's budget feed).

        Takes effect at the next dispatch decision — queued jobs are
        re-prioritized because priorities are read at dispatch time, not
        frozen at submit time.
        """
        if budget_ms <= 0:
            raise ValueError(f"budget_ms must be > 0, got {budget_ms}")
        self.budget_ms = float(budget_ms)

    def charge(self, ms: float) -> None:
        """Account externally-measured work against this session's share.

        The cloud simulator charges each tenant's *modeled* pod-side
        milliseconds here so deficit-fair ordering reflects cloud load
        even for work that never touched the pool; real solves submitted
        through a lease are charged automatically on completion and land
        in the same account.
        """
        if ms < 0:
            raise ValueError(f"charge must be non-negative, got {ms}")
        self.spent_ms += float(ms)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Mark the session inactive (already-queued jobs still run)."""
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComputeSession({self.name!r}, budget_ms={self.budget_ms}, "
            f"spent_ms={self.spent_ms:.1f})"
        )


class _Job:
    """One unit of queued work: a shard call plus its public future."""

    __slots__ = (
        "fn",
        "payload",
        "dataset",
        "session",
        "future",
        "seq",
        "attempts",
        "pool_gen",
        "dispatched_at",
    )

    def __init__(self, fn, payload, dataset, session, future, seq):
        self.fn = fn
        self.payload = payload
        self.dataset = dataset
        self.session = session
        self.future = future
        self.seq = seq
        self.attempts = 0
        self.pool_gen = -1
        self.dispatched_at = 0.0


class ServiceExecutor:
    """A lease on the shared service, duck-typing ``ShardedExecutor``.

    Existing shard→merge call sites take an ``executor=`` whose surface
    is ``workers`` / ``serial`` / ``share`` / ``cancel_flag`` / ``run``
    / ``submit`` / ``close``; a lease provides exactly that surface but
    routes every job through the service's scheduler. ``workers`` is the
    *logical* width used for chunking (callers decide shard counts with
    it), independent of the physical pool width. ``close()`` releases
    the datasets and flags created through this lease — never the
    shared pool.
    """

    __slots__ = ("_service", "_workers", "_session", "_state", "_closed", "__weakref__")

    def __init__(self, service: "ComputeService", workers: int, session: ComputeSession):
        self._service = service
        self._workers = max(1, int(workers)) if not service.serial else 0
        self._session = session
        # Same leak backstop as ShardedExecutor: a lease dropped without
        # close() still unlinks its segments via the finalizer.
        self._state: list = []
        self._closed = False
        weakref.finalize(self, _close_resources, self._state)

    @property
    def workers(self) -> int:
        """Logical chunking width (0 when the service runs serially)."""
        return self._workers

    @property
    def serial(self) -> bool:
        return self._service.serial

    @property
    def session(self) -> ComputeSession:
        return self._session

    def share(self, **arrays: np.ndarray) -> SharedDataset:
        """Place arrays in shared memory; the lease owns their lifetime."""
        if self._closed:
            raise RuntimeError("lease is closed")
        ds = SharedDataset(arrays, place=not self.serial)
        self._track(ds)
        return ds

    def cancel_flag(self) -> SharedCancelFlag:
        """A poll-able cancellation token owned by this lease."""
        if self._closed:
            raise RuntimeError("lease is closed")
        flag = SharedCancelFlag()
        self._track(flag)
        return flag

    def _track(self, resource) -> None:
        self._state[:] = [r for r in self._state if not r.closed]
        self._state.append(resource)

    def submit(
        self,
        fn: Callable[[Any, dict[str, np.ndarray]], Any],
        payload: Any,
        dataset: SharedDataset | None = None,
    ) -> Future:
        """Enqueue one shard on the shared service; returns its future."""
        if self._closed:
            raise RuntimeError("lease is closed")
        return self._service.submit_job(fn, payload, dataset, session=self._session)

    def run(
        self,
        fn: Callable[[Any, dict[str, np.ndarray]], Any],
        payloads: Sequence[Any],
        dataset: SharedDataset | None = None,
    ) -> list:
        """Run every payload through the service; results in payload order."""
        if self._closed:
            raise RuntimeError("lease is closed")
        futures = [
            self._service.submit_job(fn, p, dataset, session=self._session)
            for p in payloads
        ]
        return [f.result() for f in futures]

    def close(self) -> None:
        """Release lease-owned datasets/flags (idempotent); pool untouched."""
        self._closed = True
        _close_resources(self._state)

    def __enter__(self) -> "ServiceExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceExecutor(workers={self._workers}, "
            f"session={self._session.name!r})"
        )


class ComputeService:
    """One persistent worker pool shared by every session in the process.

    Parameters
    ----------
    workers:
        Physical pool width. ``None`` resolves via
        :func:`~repro.graphkit.parallel.effective_workers`; ``0`` is the
        serial twin — jobs run inline, bit-identical to pooled runs.
    start_method:
        Forwarded to :class:`ShardedExecutor` (fork default on POSIX).
    max_retries:
        How many times a job killed by a worker crash is resubmitted
        before its future fails with ``BrokenProcessPool``.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        start_method: str | None = None,
        max_retries: int = 2,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self._executor = ShardedExecutor(workers, start_method=start_method)
        # Re-entrant: a pool future that is already done fires its
        # done-callback inline inside add_done_callback, i.e. while the
        # dispatching thread still holds the lock.
        self._lock = threading.RLock()
        self._pending: list[_Job] = []
        self._inflight: dict[Future, _Job] = {}
        self._seq = itertools.count()
        self._pool_gen = 0
        self._max_retries = int(max_retries)
        self._closed = False
        self._sessions: dict[str, ComputeSession] = {}
        # Anonymous submissions (no session) share one house account with
        # a huge budget so they never starve real tenants of ordering.
        self._house = ComputeSession("__service__", budget_ms=1e9)
        self.stats = ComputeStats()

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Physical pool width (0 = serial twin)."""
        return self._executor.workers

    @property
    def serial(self) -> bool:
        return self._executor.serial

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending_jobs(self) -> int:
        """Jobs queued but not yet dispatched (introspection/tests)."""
        with self._lock:
            return len(self._pending)

    @property
    def inflight_jobs(self) -> int:
        """Jobs currently running on the pool (introspection/tests)."""
        with self._lock:
            return len(self._inflight)

    @property
    def pool_started(self) -> bool:
        """Whether a live worker pool exists right now."""
        return self._executor.started

    def start(self) -> "ComputeService":
        """Warm the pool now (main-thread fork point) instead of lazily."""
        with self._lock:
            if self._closed:
                raise RuntimeError("compute service is closed")
            self._ensure_pool_locked()
        return self

    # ------------------------------------------------------------------
    def session(self, name: str, *, budget_ms: float = 1000.0) -> ComputeSession:
        """Register (or replace) a named session with a scheduling budget."""
        with self._lock:
            if self._closed:
                raise RuntimeError("compute service is closed")
            sess = ComputeSession(name, budget_ms)
            self._sessions[name] = sess
            return sess

    def sessions(self) -> dict[str, ComputeSession]:
        """Live registered sessions by name (copy)."""
        with self._lock:
            return dict(self._sessions)

    def set_session_budget(self, name: str, budget_ms: float) -> ComputeSession:
        """Re-weight a registered session live (cloud budget feed).

        The next dispatch decision sees the new weight; raises
        ``KeyError`` for unknown sessions so a stale feed is loud.
        """
        with self._lock:
            sess = self._sessions[name]
            sess.set_budget(budget_ms)
            return sess

    def lease(
        self,
        workers: int | None = None,
        *,
        session: ComputeSession | None = None,
    ) -> ServiceExecutor:
        """An executor-shaped handle that schedules through this service.

        ``workers`` sets the lease's *logical* chunking width only
        (default: the physical pool width); the pool itself is shared
        and never resized by a lease.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("compute service is closed")
            width = self.workers if workers is None else int(workers)
            return ServiceExecutor(self, width, session or self._house)

    # ------------------------------------------------------------------
    def submit_job(
        self,
        fn: Callable[[Any, dict[str, np.ndarray]], Any],
        payload: Any,
        dataset: SharedDataset | None = None,
        *,
        session: ComputeSession | None = None,
    ) -> Future:
        """Enqueue one shard job; the scheduler decides when it runs.

        Returns a future resolved with the shard's result, the shard's
        exception, or ``BrokenProcessPool`` after ``max_retries``
        crash-resubmissions were exhausted.
        """
        sess = session or self._house
        future: Future = Future()
        resolves: list[tuple] = []
        with self._lock:
            if self._closed:
                raise RuntimeError("compute service is closed")
            job = _Job(fn, payload, dataset, sess, future, next(self._seq))
            self.stats.jobs_submitted += 1
            sess.jobs_submitted += 1
            if not self.serial:
                self._pending.append(job)
                self._dispatch_locked(resolves)
        if self.serial:
            # The serial twin runs inline, outside the lock, in submission
            # order — same shard function, parent-side arrays, so results
            # are bit-identical to the pooled path.
            self._run_inline(job)
        self._apply(resolves)
        return future

    def _run_inline(self, job: _Job) -> None:
        start = time.perf_counter()
        try:
            arrays = job.dataset.arrays if job.dataset is not None else {}
            result = job.fn(job.payload, arrays)
        except BaseException as exc:
            self.stats.jobs_failed += 1
            job.future.set_exception(exc)
            return
        job.session.spent_ms += (time.perf_counter() - start) * 1e3
        self.stats.jobs_completed += 1
        job.future.set_result(result)

    # -- scheduler ------------------------------------------------------
    @staticmethod
    def _apply(resolves: list[tuple]) -> None:
        # Public futures are resolved outside the service lock so a
        # caller's done-callback can re-enter the service freely.
        for setter, value in resolves:
            setter(value)

    def _ensure_pool_locked(self) -> None:
        if not self.serial and not self._executor.started:
            self._executor.start()
            self.stats.pools_started += 1

    def _dispatch_locked(self, resolves: list[tuple]) -> None:
        # Keep at most pool-width jobs on the pool, so ordering is decided
        # here at dispatch time — by live session priorities — rather than
        # frozen at submit time in the pool's FIFO call queue.
        while (
            self._pending
            and not self._closed
            and len(self._inflight) < max(1, self.workers)
        ):
            job = min(self._pending, key=lambda j: (j.session.priority, j.seq))
            self._pending.remove(job)
            self._ensure_pool_locked()
            job.pool_gen = self._pool_gen
            job.dispatched_at = time.perf_counter()
            try:
                fut = self._executor.submit(job.fn, job.payload, job.dataset)
            except BrokenProcessPool:
                self._handle_crash_locked(job, resolves)
                continue
            self._inflight[fut] = job
            fut.add_done_callback(self._on_job_done)

    def _on_job_done(self, fut: Future) -> None:
        resolves: list[tuple] = []
        with self._lock:
            job = self._inflight.pop(fut, None)
            if job is None:  # resolved elsewhere (shutdown race)
                return
            if fut.cancelled():
                # Pool torn down under the job (restart/cancel_futures
                # race): treat like a crash so the job is re-enqueued.
                self._handle_crash_locked(job, resolves)
            elif (exc := fut.exception()) is not None and isinstance(
                exc, BrokenProcessPool
            ):
                self._handle_crash_locked(job, resolves)
            elif exc is not None:
                self.stats.jobs_failed += 1
                resolves.append((job.future.set_exception, exc))
            else:
                elapsed = (time.perf_counter() - job.dispatched_at) * 1e3
                job.session.spent_ms += elapsed
                self.stats.jobs_completed += 1
                resolves.append((job.future.set_result, fut.result()))
            self._dispatch_locked(resolves)
        self._apply(resolves)

    def _handle_crash_locked(self, job: _Job, resolves: list[tuple]) -> None:
        # One dead worker fails *every* in-flight future on the pool at
        # once; the generation guard makes the burst rebuild the pool
        # exactly once, and each affected job is re-enqueued (shared
        # segments outlive workers — fresh workers re-attach by name).
        if job.pool_gen == self._pool_gen:
            self.stats.worker_crashes += 1
            self._pool_gen += 1
            if self._executor.started:
                self._executor.restart()
        job.attempts += 1
        if self._closed:
            # close() already drained the queue; nothing will re-dispatch
            # this job, so fail its future rather than strand the caller.
            self.stats.jobs_failed += 1
            resolves.append(
                (
                    job.future.set_exception,
                    RuntimeError("compute service is closed"),
                )
            )
            return
        if job.attempts > self._max_retries:
            self.stats.jobs_failed += 1
            resolves.append(
                (
                    job.future.set_exception,
                    BrokenProcessPool(
                        f"job for session {job.session.name!r} lost to worker "
                        f"crashes {job.attempts} times; retries exhausted"
                    ),
                )
            )
            return
        self.stats.resubmissions += 1
        self._pending.append(job)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and shut down: fail queued jobs, wait for in-flight ones,
        then release the pool. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending, self._pending = self._pending, []
        for job in pending:
            job.future.set_exception(RuntimeError("compute service is closed"))
        # shutdown(wait=True) lets in-flight jobs finish; their done
        # callbacks resolve the public futures on the way out.
        self._executor.close()
        with self._lock:
            self._sessions.clear()

    def __enter__(self) -> "ComputeService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"ComputeService(workers={self.workers}, {state})"


# ----------------------------------------------------------------------
# the per-process singleton
# ----------------------------------------------------------------------
_GLOBAL_LOCK = threading.Lock()
_GLOBAL: ComputeService | None = None


def get_compute_service() -> ComputeService:
    """The process-wide shared service (created on first use).

    Width defaults to :func:`~repro.graphkit.parallel.effective_workers`
    (``REPRO_WORKERS`` env var, else cores). Call
    :func:`configure_compute_service` first to pick a different shape.
    """
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None or _GLOBAL.closed:
            _GLOBAL = ComputeService()
        return _GLOBAL


def configure_compute_service(
    workers: int | None = None,
    *,
    start_method: str | None = None,
    max_retries: int = 2,
) -> ComputeService:
    """Replace the process-wide service (closing any existing one)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        previous, _GLOBAL = _GLOBAL, None
    if previous is not None and not previous.closed:
        previous.close()
    service = ComputeService(
        workers, start_method=start_method, max_retries=max_retries
    )
    with _GLOBAL_LOCK:
        _GLOBAL = service
    return service


def shutdown_compute_service() -> None:
    """Close the process-wide service (safe to call when none exists).

    Registered with :mod:`atexit`, so an interpreter that exits without
    any session ever calling ``close()`` still tears the pool down and
    unlinks every outstanding segment.
    """
    global _GLOBAL
    with _GLOBAL_LOCK:
        service, _GLOBAL = _GLOBAL, None
    if service is not None and not service.closed:
        service.close()


atexit.register(shutdown_compute_service)
