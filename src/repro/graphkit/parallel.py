"""Shared-memory parallel utilities — the OpenMP stand-in and the
process-pool execution subsystem.

Two layers live here:

* **Thread level** (:func:`parallel_map` / :func:`parallel_for_chunks`) —
  NetworKit parallelizes per-source loops (Brandes, closeness BFS sweeps,
  Louvain move phases) with OpenMP ``parallel for``. In pure Python we
  expose the same decomposition: the iteration space is split into
  deterministic contiguous chunks (mirroring OpenMP static scheduling and
  the mpi4py block decomposition from the HPC guides) and the chunks are
  executed on a thread pool. NumPy kernels release the GIL inside
  vectorized calls, so thread-level parallelism helps the array-heavy
  per-source kernels.

* **Process level** (:class:`ShardedExecutor`) — the scan and pipeline
  workloads are Python-loop-bound, so concurrent cloud sessions need to
  escape the GIL entirely. The executor owns a process pool plus a
  shared-memory data plane: frozen input arrays (CSR arc arrays,
  condensed distance matrices, trajectory coordinates) are placed in
  :mod:`multiprocessing.shared_memory` **once** via :meth:`share
  <ShardedExecutor.share>`, workers attach zero-copy by segment name, and
  shard payloads/results travel through the (small) pickle channel.
  ``workers=0`` is the serial in-process fallback executing the *same*
  shard functions on the *same* arrays, which is what makes sharded
  results bit-identical to serial ones. :class:`SharedCancelFlag` is the
  cross-process analog of the async pipeline's generation counter: one
  shared byte the parent raises and in-flight workers poll.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import get_context, shared_memory
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

__all__ = [
    "effective_threads",
    "chunk_ranges",
    "parallel_map",
    "parallel_for_chunks",
    "set_num_threads",
    "get_num_threads",
    "effective_workers",
    "SharedDataset",
    "SharedCancelFlag",
    "ShardedExecutor",
]

T = TypeVar("T")
R = TypeVar("R")

_num_threads: int | None = None


def effective_threads() -> int:
    """Number of worker threads to use by default.

    Resolution order: :func:`set_num_threads` value, ``REPRO_THREADS``
    environment variable, then ``os.cpu_count()``.
    """
    if _num_threads is not None:
        return _num_threads
    env = os.environ.get("REPRO_THREADS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def set_num_threads(n: int | None) -> None:
    """Set (or with ``None`` reset) the global worker-thread count.

    Mirrors ``networkit.setNumberOfThreads``.
    """
    global _num_threads
    if n is not None and n < 1:
        raise ValueError(f"thread count must be >= 1, got {n}")
    _num_threads = n


def get_num_threads() -> int:
    """Current effective worker-thread count (NetworKit naming analog)."""
    return effective_threads()


def chunk_ranges(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``chunks`` contiguous [start, stop) spans.

    Uses the balanced block decomposition (first ``total % chunks`` spans get
    one extra element) — identical maths to the classic MPI block
    distribution, so chunk boundaries are deterministic for any input.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    chunks = min(chunks, max(total, 1))
    base, extra = divmod(total, chunks)
    spans = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    threads: int | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, preserving order.

    Serial when ``threads == 1`` (no pool overhead); otherwise executed on a
    thread pool. ``fn`` must be thread-safe (the per-source centrality
    kernels write to pre-allocated disjoint output slots).
    """
    threads = effective_threads() if threads is None else max(1, threads)
    if threads == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=threads) as pool:
        return list(pool.map(fn, items))


def parallel_for_chunks(
    fn: Callable[[int, int], None],
    total: int,
    *,
    threads: int | None = None,
) -> None:
    """Run ``fn(start, stop)`` over a static block decomposition of ``total``.

    The callable is expected to write results into pre-allocated shared
    arrays (disjoint slices per chunk), matching the OpenMP
    ``parallel for`` + shared-output idiom.
    """
    threads = effective_threads() if threads is None else max(1, threads)
    spans = chunk_ranges(total, threads)
    if threads == 1 or len(spans) <= 1:
        for start, stop in spans:
            fn(start, stop)
        return
    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(lambda span: fn(*span), spans))


# ----------------------------------------------------------------------
# process-pool execution subsystem
# ----------------------------------------------------------------------
def effective_workers() -> int:
    """Default process-pool width: ``REPRO_WORKERS`` env var, else cores."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


# Per-worker-process cache of attached shared-memory segments, keyed by
# segment name. Attaching is a namespace lookup + mmap; caching it makes
# repeated shards over the same frozen dataset genuinely zero-copy.
# Bounded LRU: a long-lived worker sees a fresh segment per scan, so the
# cache would otherwise grow one mapping (plus one fd) per dataset for
# the life of the pool. Entries past the cap are evicted
# least-recently-used. Eviction only drops the *cache's* reference: each
# mapping's lifetime is tied to its numpy view by a finalizer (closing
# an attached ``SharedMemory`` unmaps the pages immediately — numpy does
# not keep the buffer exported, so an eager close under an in-flight
# shard would be a use-after-unmap). The mapping and its fd are released
# the moment the last view reference dies — whether that is the cache
# entry or a shard mid-job.
_ATTACH_CACHE_CAP = 32
_ATTACHED: dict[str, np.ndarray] = {}


def _attach_cache_cap() -> int:
    env = os.environ.get("REPRO_ATTACH_CACHE")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, _ATTACH_CACHE_CAP)


def _attached_view(name: str, shape: tuple, dtype: str) -> np.ndarray:
    cached = _ATTACHED.get(name)
    if cached is not None:
        # LRU touch: pop + reinsert moves the entry to the young end.
        _ATTACHED[name] = _ATTACHED.pop(name)
        return cached
    shm = shared_memory.SharedMemory(name=name)
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    view.flags.writeable = False
    weakref.finalize(view, _close_attached, shm)
    cap = _attach_cache_cap()
    while len(_ATTACHED) >= cap:
        _ATTACHED.pop(next(iter(_ATTACHED)))
    _ATTACHED[name] = view
    return view


class SharedDataset:
    """Named read-only numpy arrays placed in shared memory once.

    Created by :meth:`ShardedExecutor.share`. The parent keeps the
    original arrays (serial fallback reads them directly — same memory,
    same results); worker processes resolve the pickled ``(name, shape,
    dtype)`` specs to zero-copy views of the same physical pages.
    """

    __slots__ = ("_arrays", "_segments", "_specs", "_closed", "__weakref__")

    def __init__(self, arrays: dict[str, np.ndarray], *, place: bool = True):
        self._arrays = {k: np.ascontiguousarray(v) for k, v in arrays.items()}
        self._segments: list[shared_memory.SharedMemory] = []
        self._specs: dict[str, tuple[str, tuple, str]] = {}
        self._closed = False
        if place:
            for key, arr in self._arrays.items():
                seg = shared_memory.SharedMemory(
                    create=True, size=max(1, arr.nbytes)
                )
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[...] = arr
                view.flags.writeable = False
                self._segments.append(seg)
                self._specs[key] = (seg.name, arr.shape, arr.dtype.str)
                # Workers read the placed copy; the parent does too, so the
                # serial fallback and the pool see identical bytes.
                self._arrays[key] = view
        weakref.finalize(self, _release_segments, self._segments)

    @property
    def arrays(self) -> dict[str, np.ndarray]:
        """The in-process (parent-side) arrays, keyed by name."""
        return self._arrays

    @property
    def specs(self) -> dict[str, tuple[str, tuple, str]]:
        """Picklable ``{key: (segment_name, shape, dtype)}`` resolution map."""
        return self._specs

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (owner may prune the dataset)."""
        return self._closed

    def close(self) -> None:
        """Unlink the shared segments (idempotent)."""
        self._closed = True
        self._arrays = {}
        _release_segments(self._segments)
        self._segments = []


def _release_segments(segments: list[shared_memory.SharedMemory]) -> None:
    for seg in segments:
        try:
            seg.close()
            seg.unlink()
        except (FileNotFoundError, OSError):  # already gone
            pass


def _close_attached(shm: shared_memory.SharedMemory) -> None:
    """Close (never unlink) a mapping attached in a receiving process."""
    try:
        shm.close()
    except (BufferError, OSError):  # pragma: no cover - exiting anyway
        pass


def _close_resources(resources: list) -> None:
    """Close every tracked dataset/flag; one failure never strands the rest."""
    pending, resources[:] = list(resources), []
    for res in pending:
        try:
            res.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


def _reap_executor_state(state: dict) -> None:
    """Finalizer for an executor dropped without close(): free everything."""
    pool, state["pool"] = state["pool"], None
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)
    _close_resources(state["resources"])


class SharedCancelFlag:
    """One shared byte: the cross-process cancellation token.

    The owner (parent) raises/clears it; pickled copies attach to the
    same segment, so an out-of-process solver can poll it at iteration
    granularity exactly like an in-process ``cancel_check`` callable —
    the flag object itself is callable for drop-in use.
    """

    def __init__(self):
        self._shm = shared_memory.SharedMemory(create=True, size=1)
        self._shm.buf[0] = 0
        self._owner = True
        self._closed = False
        weakref.finalize(self, _release_segments, [self._shm])

    # pickling attaches (never re-creates) in the receiving process
    def __getstate__(self) -> str:
        return self._shm.name

    def __setstate__(self, name: str) -> None:
        self._shm = shared_memory.SharedMemory(name=name)
        self._owner = False
        self._closed = False
        # Every unpickle maps the segment anew: without a finalizer a
        # long-lived worker would accumulate one mapping per received job
        # for the life of the pool. Close-only — unlinking is the owner's.
        weakref.finalize(self, _close_attached, self._shm)

    def set(self) -> None:
        """Raise the flag (cancel in-flight shards)."""
        self._shm.buf[0] = 1

    def clear(self) -> None:
        """Lower the flag before dispatching new work."""
        self._shm.buf[0] = 0

    def is_set(self) -> bool:
        """Whether cancellation was requested."""
        return self._shm.buf[0] != 0

    __call__ = is_set

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (owner may prune the flag)."""
        return self._closed

    def close(self) -> None:
        """Release the segment (owner unlinks it)."""
        self._closed = True
        if self._owner:
            _release_segments([self._shm])
        else:
            try:
                self._shm.close()
            except OSError:  # pragma: no cover - already closed
                pass


def _run_shard(task: tuple) -> Any:
    """Worker-side trampoline: attach the dataset, run the shard function.

    ``fn`` must be a module-level callable (pickled by reference);
    it receives ``(payload, arrays)`` where ``arrays`` maps dataset keys
    to zero-copy views of the shared segments.
    """
    fn, payload, specs = task
    arrays = {
        key: _attached_view(name, tuple(shape), dtype)
        for key, (name, shape, dtype) in specs.items()
    }
    return fn(payload, arrays)


class ShardedExecutor:
    """Deterministic shard→merge execution over a shared-memory pool.

    Parameters
    ----------
    workers:
        Pool width. ``0`` (default) never spawns processes: shards run
        serially in-process over the exact same arrays, so results are
        bit-identical to any ``workers > 0`` run — the correctness anchor
        every sharded workload is tested against. ``None`` resolves via
        :func:`effective_workers` (``REPRO_WORKERS`` env var, else cores).
    start_method:
        Forced multiprocessing start method; default prefers ``fork``
        (cheap, inherits the attach cache) and falls back to ``spawn``.

    The **shard→merge contract**: ``run(fn, payloads, dataset)`` executes
    ``fn(payload, arrays)`` for every payload and returns the results in
    payload order, regardless of which worker finished first — merging is
    a deterministic, order-preserving concatenation done by the caller.
    Shard functions must be pure functions of ``(payload, arrays)``; they
    must not rely on cross-shard mutable state.
    """

    def __init__(self, workers: int | None = 0, *, start_method: str | None = None):
        self._workers = effective_workers() if workers is None else int(workers)
        if self._workers < 0:
            raise ValueError(f"workers must be >= 0, got {self._workers}")
        self._start_method = start_method
        # Pool + tracked resources live in one mutable state dict shared
        # with a weakref finalizer: an executor that is dropped without
        # close() (or dies with the process) still shuts its pool down and
        # unlinks every segment it shared — the no-leak backstop for
        # sessions that never reach their close().
        self._state: dict = {"pool": None, "resources": []}
        self._closed = False
        self._finalizer = weakref.finalize(self, _reap_executor_state, self._state)

    @property
    def _pool(self) -> ProcessPoolExecutor | None:
        return self._state["pool"]

    @property
    def _datasets(self) -> list:
        return self._state["resources"]

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Configured pool width (0 = serial in-process fallback)."""
        return self._workers

    @property
    def serial(self) -> bool:
        """True when shards run in-process (no pool)."""
        return self._workers == 0

    @property
    def started(self) -> bool:
        """Whether a live worker pool currently exists."""
        return self._state["pool"] is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # fork is the cheap default on POSIX (microsecond task setup,
            # inherited attach cache); spawn is the portable fallback and
            # the safe choice for heavily-threaded hosts (forking while
            # other threads hold locks can deadlock the child) — force it
            # via start_method= or REPRO_START_METHOD=spawn. Call
            # :meth:`start` early, from the main thread, to pin the fork
            # point before threads exist.
            method = (
                self._start_method
                or os.environ.get("REPRO_START_METHOD")
                or ("fork" if os.name == "posix" else "spawn")
            )
            self._state["pool"] = ProcessPoolExecutor(
                max_workers=self._workers, mp_context=get_context(method)
            )
        return self._state["pool"]

    def start(self) -> "ShardedExecutor":
        """Create the worker pool now instead of on first use.

        Pools default to the cheap ``fork`` start method, and forking is
        only guaranteed safe while the process is single-threaded — call
        this from the main thread during setup (the process-engine
        pipeline does, in its constructor) so the fork point never lands
        inside a threaded steady state. No-op for serial executors.
        """
        if not self.serial and not self._closed:
            self._ensure_pool()
        return self

    # ------------------------------------------------------------------
    def share(self, **arrays: np.ndarray) -> SharedDataset:
        """Place arrays in shared memory once (workers attach zero-copy).

        Serial executors skip placement entirely — the dataset simply
        wraps the caller's arrays, keeping ``workers=0`` allocation-free.
        The executor owns the dataset's lifetime: :meth:`close` unlinks
        every segment shared through it.
        """
        ds = SharedDataset(arrays, place=not self.serial)
        self._track(ds)
        return ds

    def cancel_flag(self) -> SharedCancelFlag:
        """A cancellation token workers can poll (owner: this executor)."""
        flag = SharedCancelFlag()
        self._track(flag)  # type: ignore[arg-type] # close()/closed duck-type
        return flag

    def _track(self, resource) -> None:
        # Prune resources the caller already closed so a warm executor
        # reused across thousands of scans keeps a bounded ledger. The
        # list object itself is stable (the finalizer holds it).
        resources = self._state["resources"]
        resources[:] = [d for d in resources if not d.closed]
        resources.append(resource)

    def run(
        self,
        fn: Callable[[Any, dict[str, np.ndarray]], Any],
        payloads: Sequence[Any],
        dataset: SharedDataset | None = None,
    ) -> list:
        """Run ``fn(payload, arrays)`` per payload; results in payload order.

        ``fn`` must be defined at module level (workers import it by
        reference). With ``workers=0`` the calls happen inline, in order,
        on the parent-side arrays.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        if self.serial:
            arrays = dataset.arrays if dataset is not None else {}
            return [fn(payload, arrays) for payload in payloads]
        specs = dataset.specs if dataset is not None else {}
        pool = self._ensure_pool()
        tasks = [(fn, payload, specs) for payload in payloads]
        return list(pool.map(_run_shard, tasks))

    def submit(
        self,
        fn: Callable[[Any, dict[str, np.ndarray]], Any],
        payload: Any,
        dataset: SharedDataset | None = None,
    ) -> Future:
        """Dispatch one shard asynchronously; returns its ``Future``.

        The pipeline's process engine uses this to keep the parent thread
        free to poll its generation counter while the solve runs
        out-of-process. Serial executors run the shard inline and return
        an already-resolved future.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        if self.serial:
            future: Future = Future()
            try:
                arrays = dataset.arrays if dataset is not None else {}
                future.set_result(fn(payload, arrays))
            except BaseException as exc:  # pragma: no cover - error funnel
                future.set_exception(exc)
            return future
        specs = dataset.specs if dataset is not None else {}
        return self._ensure_pool().submit(_run_shard, (fn, payload, specs))

    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Replace a (possibly broken) pool with a fresh one.

        Called by crash-recovery paths (:class:`~repro.graphkit.service.
        ComputeService`) after a worker died: the broken pool is discarded
        without waiting and the next dispatch forks a new one. Shared
        datasets are untouched — segments outlive workers, and fresh
        workers re-attach by name.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        pool, self._state["pool"] = self._state["pool"], None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the pool down and unlink every shared segment.

        Idempotent and tolerant of partial failure: a dataset whose
        segment is already gone (worker died before detach, an earlier
        close interrupted mid-way) never strands the remaining resources
        or the pool shutdown.
        """
        self._closed = True
        pool, self._state["pool"] = self._state["pool"], None
        try:
            if pool is not None:
                pool.shutdown(wait=True)
        finally:
            _close_resources(self._state["resources"])

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardedExecutor(workers={self._workers})"
