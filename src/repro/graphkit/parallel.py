"""Shared-memory parallel utilities — the OpenMP stand-in.

NetworKit parallelizes per-source loops (Brandes, closeness BFS sweeps,
Louvain move phases) with OpenMP ``parallel for``.  In pure Python we expose
the same decomposition through :func:`parallel_map`: the iteration space is
split into deterministic contiguous chunks (mirroring OpenMP static
scheduling and the mpi4py block decomposition from the HPC guides) and the
chunks are executed on a thread pool.

NumPy kernels release the GIL inside vectorized calls, so thread-level
parallelism does help the array-heavy per-source kernels; nevertheless the
default is sized by :func:`effective_threads` and everything degrades
gracefully to serial execution when only one core is available (or when
``REPRO_THREADS=1``).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "effective_threads",
    "chunk_ranges",
    "parallel_map",
    "parallel_for_chunks",
    "set_num_threads",
    "get_num_threads",
]

T = TypeVar("T")
R = TypeVar("R")

_num_threads: int | None = None


def effective_threads() -> int:
    """Number of worker threads to use by default.

    Resolution order: :func:`set_num_threads` value, ``REPRO_THREADS``
    environment variable, then ``os.cpu_count()``.
    """
    if _num_threads is not None:
        return _num_threads
    env = os.environ.get("REPRO_THREADS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def set_num_threads(n: int | None) -> None:
    """Set (or with ``None`` reset) the global worker-thread count.

    Mirrors ``networkit.setNumberOfThreads``.
    """
    global _num_threads
    if n is not None and n < 1:
        raise ValueError(f"thread count must be >= 1, got {n}")
    _num_threads = n


def get_num_threads() -> int:
    """Current effective worker-thread count (NetworKit naming analog)."""
    return effective_threads()


def chunk_ranges(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``chunks`` contiguous [start, stop) spans.

    Uses the balanced block decomposition (first ``total % chunks`` spans get
    one extra element) — identical maths to the classic MPI block
    distribution, so chunk boundaries are deterministic for any input.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    chunks = min(chunks, max(total, 1))
    base, extra = divmod(total, chunks)
    spans = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    threads: int | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, preserving order.

    Serial when ``threads == 1`` (no pool overhead); otherwise executed on a
    thread pool. ``fn`` must be thread-safe (the per-source centrality
    kernels write to pre-allocated disjoint output slots).
    """
    threads = effective_threads() if threads is None else max(1, threads)
    if threads == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=threads) as pool:
        return list(pool.map(fn, items))


def parallel_for_chunks(
    fn: Callable[[int, int], None],
    total: int,
    *,
    threads: int | None = None,
) -> None:
    """Run ``fn(start, stop)`` over a static block decomposition of ``total``.

    The callable is expected to write results into pre-allocated shared
    arrays (disjoint slices per chunk), matching the OpenMP
    ``parallel for`` + shared-output idiom.
    """
    threads = effective_threads() if threads is None else max(1, threads)
    spans = chunk_ranges(total, threads)
    if threads == 1 or len(spans) <= 1:
        for start, stop in spans:
            fn(start, stop)
        return
    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(lambda span: fn(*span), spans))
