"""Vectorized CSR compute kernels — the shared hot-path layer.

Every performance-critical algorithm in :mod:`repro.graphkit` (and the RIN
scanning/diffing code in :mod:`repro.rin`) is expressed in terms of a small
set of NumPy kernels over :class:`~repro.graphkit.csr.CSRGraph` arrays:

* **arc gathers** — expand a set of rows into their (tail, head) arc lists
  with one ``repeat`` + one fancy-index gather (no ``searchsorted`` per
  level, no Python loop over nodes);
* **segment reductions** — per-row sums/minima over the CSR value array;
* **SpMV** — ``A @ x`` and ``Aᵀ @ x`` without materializing scipy objects;
* **batched BFS** — level-synchronous breadth-first search from *many*
  sources at once, advancing a dense ``(b, n)`` frontier with one
  sparse-dense product per level (the closeness/APSP workhorse);
* **coordinate kernels** — pairwise residue distances and the sorted
  contact order that turns a cut-off sweep into ``searchsorted`` prefixes.

The kernels are deliberately allocation-light and loop-free so that the
interactive paths the paper benchmarks (measure/cut-off/frame switches,
Figs. 6-8) spend their time inside compiled NumPy/SciPy code.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from .csr import CSRGraph

__all__ = [
    "DENSE_BLOCK_ENTRIES",
    "source_blocks",
    "expand_arcs",
    "segment_sum",
    "spmv",
    "spmv_transpose",
    "batched_bfs_distances",
    "pairwise_distances",
    "sorted_contact_order",
    "core_numbers",
]

UNREACHED = -1

#: Target entry count for dense (sources, n) blocks — the single memory
#: cap shared by the batched BFS kernel and its block-iterating callers.
DENSE_BLOCK_ENTRIES = 2_000_000


def source_blocks(start: int, stop: int, n: int):
    """Sub-ranges of ``[start, stop)`` whose dense ``(block, n)`` matrix
    stays around :data:`DENSE_BLOCK_ENTRIES` entries.

    Callers that consume per-source reductions of
    :func:`batched_bfs_distances` iterate these blocks so peak memory is
    O(block × n), independent of how many sources they process.
    """
    block = max(1, DENSE_BLOCK_ENTRIES // max(n, 1))
    for lo in range(start, stop, block):
        yield lo, min(lo + block, stop)


# ----------------------------------------------------------------------
# arc gathers and segment reductions
# ----------------------------------------------------------------------
def expand_arcs(
    csr: CSRGraph, frontier: np.ndarray, *, with_weights: bool = False
) -> tuple[np.ndarray, ...]:
    """All arcs ``(tail, head[, weight])`` leaving the ``frontier`` nodes.

    Tails repeat per out-degree so ``tails[i] -> heads[i]`` enumerates the
    frontier's outgoing arcs; this is the shared primitive behind BFS
    frontier expansion and the Brandes forward/backward sweeps.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    gather, counts = csr.arc_gather(frontier)
    tails = np.repeat(frontier, counts)
    heads = csr.indices[gather].astype(np.int64, copy=False)
    if with_weights:
        return tails, heads, csr.weights[gather]
    return tails, heads


def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row sums of a CSR-aligned value array (0 for empty rows)."""
    n = len(indptr) - 1
    if len(values) == 0:
        return np.zeros(n, dtype=np.float64)
    cumulative = np.concatenate([[0.0], np.cumsum(values, dtype=np.float64)])
    return cumulative[indptr[1:]] - cumulative[indptr[:-1]]


# ----------------------------------------------------------------------
# sparse matrix-vector products
# ----------------------------------------------------------------------
def spmv(csr: CSRGraph, x: np.ndarray) -> np.ndarray:
    """``A @ x`` over the CSR rows (weighted neighbourhood sum)."""
    x = np.asarray(x, dtype=np.float64)
    if csr.nnz == 0:
        return np.zeros(csr.n, dtype=np.float64)
    return segment_sum(csr.weights * x[csr.indices], csr.indptr)


def spmv_transpose(csr: CSRGraph, x: np.ndarray) -> np.ndarray:
    """``Aᵀ @ x`` via a bincount scatter over arc heads.

    Equals :func:`spmv` on undirected (symmetric) adjacencies; on directed
    graphs this is the "pull along in-edges" product PageRank needs.
    """
    x = np.asarray(x, dtype=np.float64)
    n = csr.n
    if csr.nnz == 0:
        return np.zeros(n, dtype=np.float64)
    return np.bincount(
        csr.indices, weights=csr.weights * x[csr.arc_tails()], minlength=n
    )[:n].astype(np.float64, copy=False)


# ----------------------------------------------------------------------
# batched BFS
# ----------------------------------------------------------------------
def batched_bfs_distances(
    csr: CSRGraph,
    sources: np.ndarray,
    *,
    max_depth: int | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Hop distances from every source at once — ``(len(sources), n)``.

    Runs a level-synchronous BFS whose frontier is a dense ``(b, n)``
    boolean matrix advanced by one sparse-dense product per level, so the
    per-level cost is one compiled SpMM instead of ``b`` Python-level
    frontier expansions. Unreachable entries are ``-1``; ``max_depth``
    truncates the sweep (used by the k-hop neighbourhood kernels).

    Sources are processed in chunks of ``chunk_size`` (default sized to
    keep the dense frontier block around ~2M entries) so memory stays
    bounded on large graphs.
    """
    sources = np.asarray(sources, dtype=np.int64)
    n = csr.n
    k = len(sources)
    if k == 0:
        return np.empty((0, n), dtype=np.int32)
    if n == 0:
        raise IndexError("BFS sources on an empty graph")
    if sources.min() < 0 or sources.max() >= n:
        raise IndexError(f"BFS source out of range [0, {n})")
    if chunk_size is None:
        chunk_size = max(1, min(k, DENSE_BLOCK_ENTRIES // max(n, 1)))
    pattern = csr.to_scipy_pattern()
    dist = np.full((k, n), UNREACHED, dtype=np.int32)
    for lo in range(0, k, chunk_size):
        hi = min(lo + chunk_size, k)
        block = sources[lo:hi]
        b = len(block)
        d = dist[lo:hi]
        d[np.arange(b), block] = 0
        frontier = np.zeros((b, n), dtype=np.float64)
        frontier[np.arange(b), block] = 1.0
        level = 0
        while True:
            level += 1
            if max_depth is not None and level > max_depth:
                break
            reached = frontier @ pattern  # dense (b, n) SpMM
            fresh = (reached > 0.0) & (d == UNREACHED)
            if not fresh.any():
                break
            d[fresh] = level
            frontier = fresh.astype(np.float64)
    return dist


# ----------------------------------------------------------------------
# coordinate kernels (RIN scanning)
# ----------------------------------------------------------------------
def pairwise_distances(coords: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix of ``(n, d)`` coordinates.

    Uses the Gram-matrix identity ``|a-b|² = |a|² + |b|² - 2a·b`` — one
    BLAS matmul instead of an ``(n, n, d)`` broadcast — with a clip for
    the tiny negatives float cancellation produces on the diagonal.
    """
    coords = np.asarray(coords, dtype=np.float64)
    sq = np.einsum("ij,ij->i", coords, coords)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (coords @ coords.T)
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return np.sqrt(d2)


def sorted_contact_order(
    distance_matrix: np.ndarray, *, min_separation: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Upper-triangle pairs ordered by ascending distance.

    Returns ``(pairs, distances)`` with ``pairs[i] = (u, v)``, ``u < v``,
    ``|u - v| >= min_separation`` and ``distances`` sorted ascending.
    A cut-off sweep then reduces to ``searchsorted`` prefixes of this
    order: the edge set at cut-off ``c`` is ``pairs[:searchsorted(d, c)]``
    — the distance matrix is thresholded *once* for the whole sweep.
    """
    n = distance_matrix.shape[0]
    iu, iv = np.triu_indices(n, k=max(1, int(min_separation)))
    d = distance_matrix[iu, iv]
    order = np.argsort(d, kind="stable")
    pairs = np.column_stack([iu[order], iv[order]]).astype(np.int64)
    return pairs, d[order]


# ----------------------------------------------------------------------
# k-core (bulk peeling)
# ----------------------------------------------------------------------
def core_numbers(csr: CSRGraph) -> np.ndarray:
    """Per-node coreness via vectorized bulk peeling.

    Instead of removing one minimum-degree node at a time (the scalar
    Batagelj-Zaveršnik order), each round removes *every* node at the
    current peeling floor in whole waves: gather the wave's arcs, drop the
    removed endpoints, decrement survivor degrees with one ``bincount``.
    Round count is bounded by the degeneracy, wave count by the peeling
    depth — both tiny for RIN-like graphs.
    """
    n = csr.n
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core
    indptr, indices = csr.indptr, csr.indices
    deg = csr.degrees().astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)
    remaining = n
    floor = 0
    while remaining:
        floor = max(floor, int(deg[alive].min()))
        wave = np.flatnonzero(alive & (deg <= floor))
        while len(wave):
            core[wave] = floor
            alive[wave] = False
            remaining -= len(wave)
            if len(wave) <= 32:
                # Cascade waves are usually a handful of nodes: direct
                # slice concatenation beats the vectorized gather's fixed
                # call overhead at this size.
                heads = (
                    np.concatenate(
                        [indices[indptr[u] : indptr[u + 1]] for u in wave]
                    )
                    if len(wave) > 1
                    else indices[indptr[wave[0]] : indptr[wave[0] + 1]]
                )
            else:
                _, heads = expand_arcs(csr, wave)
            touched = heads[alive[heads]]
            if len(touched) == 0:
                break
            deg -= np.bincount(touched, minlength=n)
            wave = np.flatnonzero(alive & (deg <= floor))
    return core
