"""Vectorized CSR compute kernels — the shared hot-path layer.

Every performance-critical algorithm in :mod:`repro.graphkit` (and the RIN
scanning/diffing code in :mod:`repro.rin`) is expressed in terms of a small
set of NumPy kernels over :class:`~repro.graphkit.csr.CSRGraph` arrays:

* **arc gathers** — expand a set of rows into their (tail, head) arc lists
  with one ``repeat`` + one fancy-index gather (no ``searchsorted`` per
  level, no Python loop over nodes);
* **segment reductions** — per-row sums/minima over the CSR value array;
* **SpMV** — ``A @ x`` and ``Aᵀ @ x`` without materializing scipy objects;
* **batched BFS** — level-synchronous breadth-first search from *many*
  sources at once, advancing a dense ``(b, n)`` frontier with one
  sparse-dense product per level (the closeness/APSP workhorse);
* **bit-packed frontiers** — the same level expansion with the source
  axis packed 64-per-word into ``np.uint64`` bitset rows (one
  ``bitwise_or.reduceat`` per level instead of a float SpMM, popcount
  via a byte LUT), selected automatically for unweighted traversals
  above :data:`BITPACK_THRESHOLD` nodes;
* **batched Brandes** — the betweenness forward/backward sweeps with
  sigma/delta carried as dense ``(b, n)`` matrices, one SpMM per BFS
  level for a whole block of sources;
* **delta-stepping** — multi-source *weighted* shortest paths with
  bucket-gated vectorized relaxations over the CSR arc arrays (the
  weighted closeness/harmonic/betweenness and weighted-APSP workhorse);
* **coordinate kernels** — pairwise residue distances and the sorted
  contact order that turns a cut-off sweep into ``searchsorted`` prefixes.

The kernels are deliberately allocation-light and loop-free so that the
interactive paths the paper benchmarks (measure/cut-off/frame switches,
Figs. 6-8) spend their time inside compiled NumPy/SciPy code. The block
math behind the batched Brandes and delta-stepping kernels is documented
in ``docs/KERNELS.md`` (the algorithms handbook); every kernel keeps a
scalar reference twin for differential testing.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "DENSE_BLOCK_ENTRIES",
    "SP_TOL",
    "source_blocks",
    "expand_arcs",
    "segment_sum",
    "spmv",
    "spmv_transpose",
    "BITPACK_THRESHOLD",
    "popcount64",
    "pack_bits",
    "unpack_bits",
    "packed_spmm_or",
    "batched_bfs_distances",
    "batched_brandes_dependencies",
    "batched_brandes_dependencies_directed",
    "batched_delta_stepping_distances",
    "multi_source_delta_stepping",
    "batched_weighted_dependencies",
    "pairwise_distances",
    "sorted_contact_order",
    "morton_codes",
    "core_numbers",
]

UNREACHED = -1

#: Relative tolerance for "is this arc on a shortest path" tests on
#: float path lengths. Both the vectorized weighted kernels and their
#: scalar reference twins use this same tolerance so tight-arc detection
#: cannot drift between engines.
SP_TOL = 1e-9

#: Target entry count for dense (sources, n) blocks — the single memory
#: cap shared by the batched BFS kernel and its block-iterating callers.
DENSE_BLOCK_ENTRIES = 2_000_000


def source_blocks(start: int, stop: int, n: int):
    """Sub-ranges of ``[start, stop)`` whose dense ``(block, n)`` matrix
    stays around :data:`DENSE_BLOCK_ENTRIES` entries.

    Callers that consume per-source reductions of
    :func:`batched_bfs_distances` iterate these blocks so peak memory is
    O(block × n), independent of how many sources they process.
    """
    block = max(1, DENSE_BLOCK_ENTRIES // max(n, 1))
    for lo in range(start, stop, block):
        yield lo, min(lo + block, stop)


# ----------------------------------------------------------------------
# arc gathers and segment reductions
# ----------------------------------------------------------------------
def expand_arcs(
    csr: CSRGraph, frontier: np.ndarray, *, with_weights: bool = False
) -> tuple[np.ndarray, ...]:
    """All arcs ``(tail, head[, weight])`` leaving the ``frontier`` nodes.

    Tails repeat per out-degree so ``tails[i] -> heads[i]`` enumerates the
    frontier's outgoing arcs; this is the shared primitive behind BFS
    frontier expansion and the Brandes forward/backward sweeps.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    gather, counts = csr.arc_gather(frontier)
    tails = np.repeat(frontier, counts)
    heads = csr.indices[gather].astype(np.int64, copy=False)
    if with_weights:
        return tails, heads, csr.weights[gather]
    return tails, heads


def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row sums of a CSR-aligned value array (0 for empty rows)."""
    n = len(indptr) - 1
    if len(values) == 0:
        return np.zeros(n, dtype=np.float64)
    cumulative = np.concatenate([[0.0], np.cumsum(values, dtype=np.float64)])
    return cumulative[indptr[1:]] - cumulative[indptr[:-1]]


# ----------------------------------------------------------------------
# sparse matrix-vector products
# ----------------------------------------------------------------------
def spmv(csr: CSRGraph, x: np.ndarray) -> np.ndarray:
    """``A @ x`` over the CSR rows (weighted neighbourhood sum)."""
    x = np.asarray(x, dtype=np.float64)
    if csr.nnz == 0:
        return np.zeros(csr.n, dtype=np.float64)
    return segment_sum(csr.weights * x[csr.indices], csr.indptr)


def spmv_transpose(csr: CSRGraph, x: np.ndarray) -> np.ndarray:
    """``Aᵀ @ x`` via a bincount scatter over arc heads.

    Equals :func:`spmv` on undirected (symmetric) adjacencies; on directed
    graphs this is the "pull along in-edges" product PageRank needs.
    """
    x = np.asarray(x, dtype=np.float64)
    n = csr.n
    if csr.nnz == 0:
        return np.zeros(n, dtype=np.float64)
    return np.bincount(
        csr.indices, weights=csr.weights * x[csr.arc_tails()], minlength=n
    )[:n].astype(np.float64, copy=False)


# ----------------------------------------------------------------------
# bit-packed frontiers
#
# For unweighted traversals the per-level state is purely boolean, so the
# dense (b, n) float frontier of the SpMM path wastes 64x the memory
# bandwidth the information content needs. The packed representation
# transposes and packs it into an (n, W) np.uint64 matrix with
# W = ceil(b / 64): bit s of word `packed[v, s // 64]` means "source s
# has reached node v". Level expansion is then one
# `np.bitwise_or.reduceat` over the CSR rows — the boolean-semiring SpMM
# — and set sizes come from a byte-LUT popcount. Above
# BITPACK_THRESHOLD nodes the packed path wins despite the
# pack/unpack overhead and is selected automatically.
# ----------------------------------------------------------------------

#: Node count above which unweighted batched traversals switch to the
#: bit-packed frontier representation automatically (``packed=None``).
BITPACK_THRESHOLD = 10_000

#: Set-bit count of every byte value — the LUT behind :func:`popcount64`.
_BYTE_POPCOUNT = np.array(
    [bin(v).count("1") for v in range(256)], dtype=np.uint8
)


def popcount64(x: np.ndarray) -> np.ndarray:
    """Per-element set-bit count of a ``np.uint64`` array.

    Views each word as 8 bytes and sums their LUT popcounts — one fancy
    index + one reduction, no Python-level bit twiddling. Shape is
    preserved; the result dtype is ``int64``.
    """
    x = np.ascontiguousarray(np.atleast_1d(x), dtype=np.uint64)
    counts = _BYTE_POPCOUNT[x.view(np.uint8)]
    return counts.reshape(x.shape + (8,)).sum(axis=-1, dtype=np.int64)


def pack_bits(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(r, k)`` matrix into ``(r, ceil(k/64))`` words.

    Column ``j`` of the input becomes bit ``j % 64`` of word ``j // 64``
    (little-endian bit order, matching ``np.packbits(bitorder="little")``
    with the bytes of each word in memory order). Inverse of
    :func:`unpack_bits`.
    """
    mask = np.ascontiguousarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D (rows, bits), got {mask.shape}")
    r, k = mask.shape
    words = (k + 63) // 64
    packed_bytes = np.packbits(mask, axis=1, bitorder="little")
    full = np.zeros((r, words * 8), dtype=np.uint8)
    full[:, : packed_bytes.shape[1]] = packed_bytes
    return full.view(np.uint64)


def unpack_bits(packed: np.ndarray, k: int) -> np.ndarray:
    """Unpack ``(r, W)`` uint64 words back to a boolean ``(r, k)`` matrix.

    ``k`` must not exceed ``W * 64``; bits beyond ``k`` are discarded.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise ValueError(f"packed must be 2-D, got {packed.shape}")
    if k > packed.shape[1] * 64:
        raise ValueError(
            f"cannot unpack {k} bits from {packed.shape[1]} words"
        )
    bits = np.unpackbits(
        packed.view(np.uint8), axis=1, count=k, bitorder="little"
    )
    return bits.astype(bool)


def packed_spmm_or(csr: CSRGraph, packed: np.ndarray) -> np.ndarray:
    """Boolean-semiring SpMM on packed rows: OR each row's neighbours.

    ``packed`` is an ``(n, W)`` uint64 bitset matrix; the result holds, at
    row ``v``, the OR of the rows of ``v``'s CSR-listed neighbours — one
    frontier expansion step for all 64·W packed sources at once. Rows are
    the graph's *out*-adjacency, so on a symmetric (undirected) CSR this
    is exactly the neighbourhood union; empty rows yield zero words.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    n, words = packed.shape
    if n != csr.n:
        raise ValueError(f"packed rows {n} != csr.n {csr.n}")
    out = np.zeros((n, words), dtype=np.uint64)
    if csr.nnz == 0 or words == 0:
        return out
    nz = np.flatnonzero(np.diff(csr.indptr) > 0)
    # reduceat over only the nonempty-row starts: consecutive starts are
    # exactly one row's arc span (rows between them are empty), so each
    # segment ORs precisely that row's neighbour words. Passing empty
    # rows' offsets would instead return a stray element (reduceat's
    # repeated-offset rule) — the same nz-select _delta_stepping_block
    # uses for its segmented minima.
    gathered = packed[csr.indices]
    out[nz] = np.bitwise_or.reduceat(gathered, csr.indptr[nz], axis=0)
    return out


def _packed_seed(block: np.ndarray, n: int) -> np.ndarray:
    """Seed ``(n, W)`` bitsets: bit ``j`` set at row ``block[j]``."""
    b = len(block)
    words = (b + 63) // 64
    seeds = np.zeros((n, words), dtype=np.uint64)
    rows = np.arange(b)
    bit = np.uint64(1) << (rows & 63).astype(np.uint64)
    # Duplicate sources share a node row, so scatter with or.at.
    np.bitwise_or.at(seeds, (block, rows >> 6), bit)
    return seeds


def _bfs_block_packed(
    csr: CSRGraph,
    block: np.ndarray,
    d: np.ndarray,
    max_depth: int | None,
) -> None:
    """Fill the pre-seeded ``(b, n)`` distance block via packed frontiers.

    ``d`` arrives with 0 at each row's source and ``UNREACHED`` elsewhere.
    """
    n = csr.n
    b = len(block)
    frontier = _packed_seed(block, n)
    reached = frontier.copy()
    # Track reached (source, node) pairs with the LUT popcount so a
    # final all-pairs level can skip its trailing empty expansion.
    covered = int(popcount64(frontier).sum())
    level = 0
    while True:
        level += 1
        if max_depth is not None and level > max_depth:
            break
        fresh = packed_spmm_or(csr, frontier)
        np.bitwise_and(fresh, np.invert(reached), out=fresh)
        live = np.flatnonzero(fresh.any(axis=1))
        if len(live) == 0:
            break
        reached |= fresh
        bits = unpack_bits(fresh[live], b)  # (len(live), b)
        node_pos, src_idx = np.nonzero(bits)
        d[src_idx, live[node_pos]] = level
        covered += len(node_pos)
        if covered == b * n:
            break
        frontier = fresh


def _use_packed(csr: CSRGraph, packed: bool | None) -> bool:
    """Resolve the shared ``packed=`` tri-state of the unweighted kernels."""
    if packed is None:
        return csr.n >= BITPACK_THRESHOLD and not csr.directed
    if packed and csr.directed:
        raise NotImplementedError(
            "bit-packed frontiers require an undirected CSR"
        )
    return bool(packed)


# ----------------------------------------------------------------------
# batched BFS
# ----------------------------------------------------------------------
def batched_bfs_distances(
    csr: CSRGraph,
    sources: np.ndarray,
    *,
    max_depth: int | None = None,
    chunk_size: int | None = None,
    packed: bool | None = None,
) -> np.ndarray:
    """Hop distances from every source at once — ``(len(sources), n)``.

    Runs a level-synchronous BFS whose frontier is a dense ``(b, n)``
    boolean matrix advanced by one sparse-dense product per level, so the
    per-level cost is one compiled SpMM instead of ``b`` Python-level
    frontier expansions. Unreachable entries are ``-1``; ``max_depth``
    truncates the sweep (used by the k-hop neighbourhood kernels).

    ``packed`` selects the bit-packed frontier representation (64 sources
    per ``np.uint64`` word, level expansion via :func:`packed_spmm_or`):
    ``None`` (default) picks it automatically on undirected graphs with
    at least :data:`BITPACK_THRESHOLD` nodes, ``True``/``False`` force
    the choice (``True`` requires an undirected CSR). Both engines
    produce identical distance matrices.

    Sources are processed in chunks of ``chunk_size`` (default sized to
    keep the dense frontier block around ~2M entries) so memory stays
    bounded on large graphs.
    """
    sources = np.asarray(sources, dtype=np.int64)
    n = csr.n
    k = len(sources)
    if k == 0:
        return np.empty((0, n), dtype=np.int32)
    if n == 0:
        raise IndexError("BFS sources on an empty graph")
    if sources.min() < 0 or sources.max() >= n:
        raise IndexError(f"BFS source out of range [0, {n})")
    if chunk_size is None:
        chunk_size = max(1, min(k, DENSE_BLOCK_ENTRIES // max(n, 1)))
    use_packed = _use_packed(csr, packed)
    pattern = None if use_packed else csr.to_scipy_pattern()
    dist = np.full((k, n), UNREACHED, dtype=np.int32)
    for lo in range(0, k, chunk_size):
        hi = min(lo + chunk_size, k)
        block = sources[lo:hi]
        b = len(block)
        d = dist[lo:hi]
        d[np.arange(b), block] = 0
        if use_packed:
            _bfs_block_packed(csr, block, d, max_depth)
            continue
        frontier = np.zeros((b, n), dtype=np.float64)
        frontier[np.arange(b), block] = 1.0
        level = 0
        while True:
            level += 1
            if max_depth is not None and level > max_depth:
                break
            reached = frontier @ pattern  # dense (b, n) SpMM
            fresh = (reached > 0.0) & (d == UNREACHED)
            if not fresh.any():
                break
            d[fresh] = level
            frontier = fresh.astype(np.float64)
    return dist


# ----------------------------------------------------------------------
# batched Brandes (multi-source betweenness dependencies)
#
# The forward phase is the SpMM BFS above with the frontier carrying
# *path counts* instead of 0/1 flags: `cur @ pattern` lands, at every
# newly discovered node, exactly the sum of sigma over its predecessors
# (all shortest paths into BFS level L enter from level L-1). The
# backward phase replays the levels in reverse with one more SpMM per
# level: pushing (1 + delta)/sigma from level L through the symmetric
# adjacency and masking to level L-1 is precisely Brandes' dependency
# recurrence, for the whole source block at once.
#
# The packed variant discovers levels with bit-packed frontiers and then
# restricts the float sigma/delta work to the *fresh* (source, node)
# pairs of each level: per level it gathers only the arcs leaving those
# pairs and scatter-adds into the level's own pair set, so the total
# float work over the whole sweep is O(b·nnz) instead of the SpMM path's
# O(levels·b·nnz).
# ----------------------------------------------------------------------
def _brandes_block_packed(
    csr: CSRGraph, block: np.ndarray, dependency: np.ndarray
) -> None:
    """Accumulate one source block's Brandes dependencies, packed engine.

    Path counts are identical to the SpMM engine (integer-valued floats);
    dependency sums may differ at float rounding order (~1e-16 relative)
    because per-level contributions accumulate in arc order rather than
    SpMM column order — the tolerance the differential suite documents.
    """
    n = csr.n
    b = len(block)
    rows = np.arange(b, dtype=np.int64)
    block = block.astype(np.int64, copy=False)
    heads_all = csr.indices.astype(np.int64, copy=False)
    dist = np.full((b, n), UNREACHED, dtype=np.int32)
    dist[rows, block] = 0
    # sigma/delta live flat (b·n) so (row, node) pairs are single keys
    # for the per-level gathers and sorted-target scatter adds.
    sigma = np.zeros(b * n, dtype=np.float64)
    sigma[rows * n + block] = 1.0
    frontier = _packed_seed(block, n)
    reached = frontier.copy()
    # Per level, the fresh (source-row, node) pairs; level 0 is the seeds.
    pair_levels: list[tuple[np.ndarray, np.ndarray]] = [(rows, block)]
    while True:
        fresh = packed_spmm_or(csr, frontier)
        np.bitwise_and(fresh, np.invert(reached), out=fresh)
        live = np.flatnonzero(fresh.any(axis=1))
        if len(live) == 0:
            break
        reached |= fresh
        bits = unpack_bits(fresh[live], b)
        node_pos, src_idx = np.nonzero(bits)
        pair_rows = src_idx.astype(np.int64, copy=False)
        pair_nodes = live[node_pos]
        dist[pair_rows, pair_nodes] = len(pair_levels)
        pair_levels.append((pair_rows, pair_nodes))
        frontier = fresh
    # Forward: push sigma from each level's pairs along arcs that land on
    # the next level. Within a level every (row, head) target is a fresh
    # pair, so a compact bincount over the sorted target keys replaces the
    # dense SpMM.
    for lev in range(1, len(pair_levels)):
        prev_rows, prev_nodes = pair_levels[lev - 1]
        cur_rows, cur_nodes = pair_levels[lev]
        tgt = np.sort(cur_rows * n + cur_nodes)
        gather, counts = csr.arc_gather(prev_nodes)
        if len(gather) == 0:
            continue
        rr = np.repeat(prev_rows, counts)
        hh = heads_all[gather]
        sel = dist[rr, hh] == lev
        if not sel.any():
            continue
        rs = rr[sel]
        us = np.repeat(prev_nodes, counts)[sel]
        pos = np.searchsorted(tgt, rs * n + hh[sel])
        sigma[tgt] += np.bincount(
            pos, weights=sigma[rs * n + us], minlength=len(tgt)
        )
    # Backward: pull (1 + delta)/sigma from each level's pairs to their
    # level-(L-1) predecessors, again over only the live arcs.
    delta = np.zeros(b * n, dtype=np.float64)
    for lev in range(len(pair_levels) - 1, 0, -1):
        w_rows, w_nodes = pair_levels[lev]
        keys_w = w_rows * n + w_nodes
        coeff = (1.0 + delta[keys_w]) / sigma[keys_w]
        tgt_rows, tgt_nodes = pair_levels[lev - 1]
        tgt = np.sort(tgt_rows * n + tgt_nodes)
        gather, counts = csr.arc_gather(w_nodes)
        if len(gather) == 0:
            continue
        rr = np.repeat(w_rows, counts)
        vv = heads_all[gather]
        sel = dist[rr, vv] == lev - 1
        if not sel.any():
            continue
        rs = rr[sel]
        keys_v = rs * n + vv[sel]
        pos = np.searchsorted(tgt, keys_v)
        delta[tgt] += np.bincount(
            pos,
            weights=sigma[keys_v] * np.repeat(coeff, counts)[sel],
            minlength=len(tgt),
        )
    delta[rows * n + block] = 0.0
    dependency += delta.reshape(b, n).sum(axis=0)


def batched_brandes_dependencies(
    csr: CSRGraph,
    sources: np.ndarray,
    *,
    chunk_size: int | None = None,
    packed: bool | None = None,
) -> np.ndarray:
    """Summed Brandes dependencies of ``sources`` — an ``(n,)`` vector.

    Runs the unweighted Brandes forward/backward sweeps for *blocks* of
    sources simultaneously: path counts (``sigma``) and partial
    dependencies (``delta``) live in dense ``(b, n)`` matrices advanced
    by one sparse-dense product per BFS level, so per-level cost is one
    compiled SpMM for the whole block instead of ``b`` per-source
    sweeps. Each ordered source contributes its full dependency vector
    (the caller halves for the undirected convention).

    Sources are processed in chunks of ``chunk_size`` (default sized to
    keep each dense block near :data:`DENSE_BLOCK_ENTRIES` entries); the
    result is independent of the chunking — a property the differential
    suite pins.

    ``packed`` selects the bit-packed frontier engine (auto above
    :data:`BITPACK_THRESHOLD` nodes when ``None``): level discovery runs
    on uint64 bitsets and sigma/delta work is restricted to the fresh
    pairs of each level. Dependencies agree with the SpMM engine within
    float rounding order (path counts are identical).

    Undirected (symmetric) adjacencies only: the backward push reuses
    the forward pattern matrix as its own transpose.
    """
    sources = np.asarray(sources, dtype=np.int64)
    n = csr.n
    k = len(sources)
    dependency = np.zeros(n, dtype=np.float64)
    if k == 0:
        return dependency
    if n == 0:
        raise IndexError("Brandes sources on an empty graph")
    if sources.min() < 0 or sources.max() >= n:
        raise IndexError(f"Brandes source out of range [0, {n})")
    if csr.directed:
        raise NotImplementedError(
            "batched_brandes_dependencies requires an undirected CSR; "
            "use batched_brandes_dependencies_directed"
        )
    if chunk_size is None:
        chunk_size = max(1, min(k, DENSE_BLOCK_ENTRIES // max(n, 1)))
    use_packed = _use_packed(csr, packed)
    if use_packed:
        for lo in range(0, k, chunk_size):
            _brandes_block_packed(csr, sources[lo : lo + chunk_size], dependency)
        return dependency
    pattern = csr.to_scipy_pattern()
    for lo in range(0, k, chunk_size):
        block = sources[lo : lo + chunk_size]
        b = len(block)
        rows = np.arange(b)
        dist = np.full((b, n), UNREACHED, dtype=np.int32)
        dist[rows, block] = 0
        sigma = np.zeros((b, n), dtype=np.float64)
        sigma[rows, block] = 1.0
        cur = sigma.copy()  # sigma restricted to the current frontier
        level = 0
        while True:
            level += 1
            reached = cur @ pattern  # dense (b, n) SpMM
            fresh = (reached > 0.0) & (dist == UNREACHED)
            if not fresh.any():
                break
            dist[fresh] = level
            sigma[fresh] = reached[fresh]
            cur = np.where(fresh, reached, 0.0)
        delta = np.zeros((b, n), dtype=np.float64)
        for lev in range(level - 1, 0, -1):
            on_level = dist == lev
            coeff = np.zeros((b, n), dtype=np.float64)
            np.divide(1.0 + delta, sigma, out=coeff, where=on_level)
            contrib = coeff @ pattern  # symmetric: pattern is its own transpose
            delta += np.where(dist == lev - 1, sigma * contrib, 0.0)
        delta[rows, block] = 0.0
        dependency += delta.sum(axis=0)
    return dependency


def batched_brandes_dependencies_directed(
    csr: CSRGraph,
    sources: np.ndarray,
    *,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Summed *directed* Brandes dependencies of ``sources`` — ``(n,)``.

    The directed-graph variant of :func:`batched_brandes_dependencies`:
    the forward sweep propagates path counts along *out*-arcs
    (``cur @ pattern``, CSR rows are out-adjacency) while the backward
    sweep pushes dependencies to DAG predecessors along *in*-arcs — one
    SpMM per level against the transposed pattern. Each source
    contributes its dependency over ordered pairs exactly once, so the
    caller does **not** halve. On a symmetric CSR the transpose is the
    pattern itself and the result equals the undirected kernel's (every
    unordered pair counted twice).
    """
    sources = np.asarray(sources, dtype=np.int64)
    n = csr.n
    k = len(sources)
    dependency = np.zeros(n, dtype=np.float64)
    if k == 0:
        return dependency
    if n == 0:
        raise IndexError("Brandes sources on an empty graph")
    if sources.min() < 0 or sources.max() >= n:
        raise IndexError(f"Brandes source out of range [0, {n})")
    if chunk_size is None:
        chunk_size = max(1, min(k, DENSE_BLOCK_ENTRIES // max(n, 1)))
    pattern = csr.to_scipy_pattern()
    pattern_t = pattern.T.tocsr() if csr.directed else pattern
    for lo in range(0, k, chunk_size):
        block = sources[lo : lo + chunk_size]
        b = len(block)
        rows = np.arange(b)
        dist = np.full((b, n), UNREACHED, dtype=np.int32)
        dist[rows, block] = 0
        sigma = np.zeros((b, n), dtype=np.float64)
        sigma[rows, block] = 1.0
        cur = sigma.copy()
        level = 0
        while True:
            level += 1
            reached = cur @ pattern  # push sigma along out-arcs
            fresh = (reached > 0.0) & (dist == UNREACHED)
            if not fresh.any():
                break
            dist[fresh] = level
            sigma[fresh] = reached[fresh]
            cur = np.where(fresh, reached, 0.0)
        delta = np.zeros((b, n), dtype=np.float64)
        for lev in range(level - 1, 0, -1):
            on_level = dist == lev
            coeff = np.zeros((b, n), dtype=np.float64)
            np.divide(1.0 + delta, sigma, out=coeff, where=on_level)
            contrib = coeff @ pattern_t  # pull to in-neighbours
            delta += np.where(dist == lev - 1, sigma * contrib, 0.0)
        delta[rows, block] = 0.0
        dependency += delta.sum(axis=0)
    return dependency


# ----------------------------------------------------------------------
# delta-stepping (multi-source weighted shortest paths)
#
# Bucket invariants (see docs/KERNELS.md for the full derivation):
#   1. entries are settled bucket by bucket: once no pending entry has a
#      tentative distance below (B+1)·delta, every distance below that
#      threshold is final (any improving path would have to leave a node
#      that was itself below the threshold and already fully relaxed);
#   2. within the current bucket, relaxations repeat to a fixpoint, so
#      chains of light edges inside one bucket resolve before the bucket
#      is declared settled;
#   3. tentative distances only ever decrease, so the sweep terminates
#      (each entry takes finitely many distinct path-length values).
#
# The relaxation itself is arc-parallel: gather `dist[tail] + w` for
# every arc whose tail is in the frontier, then a per-head segmented
# minimum (`np.minimum.reduceat` over the head-grouped arc order, which
# for a symmetric CSR is the row order itself).
# ----------------------------------------------------------------------
def _in_arc_view(csr: CSRGraph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Arc arrays grouped by *head*: ``(starts_per_head, tails, weights)``.

    For an undirected (symmetric) CSR this is the CSR itself — row ``v``
    already enumerates the in-arcs of ``v`` with tails ``indices`` and
    identical weights. Directed graphs get an explicit transpose via one
    stable argsort of the head column.
    """
    if not csr.directed:
        return csr.indptr, csr.indices, csr.weights
    order = np.argsort(csr.indices, kind="stable")
    in_indptr = np.zeros(csr.n + 1, dtype=np.int64)
    np.cumsum(np.bincount(csr.indices, minlength=csr.n), out=in_indptr[1:])
    return in_indptr, csr.arc_tails()[order], csr.weights[order]


def _delta_stepping_block(
    csr: CSRGraph,
    dist: np.ndarray,
    pending: np.ndarray,
    *,
    delta: float,
) -> None:
    """Settle one pre-seeded ``(b, n)`` tentative-distance block in place.

    ``dist`` holds the seeds (0 at each row's sources, inf elsewhere) and
    ``pending`` marks entries awaiting relaxation. On return ``dist`` is
    the exact shortest-path distance matrix.
    """
    in_indptr, in_tails, in_weights = _in_arc_view(csr)
    in_degrees = np.diff(in_indptr)
    nz = np.flatnonzero(in_degrees > 0)
    if len(nz) == 0:
        return
    # Head node of every in-arc (nondecreasing — the arcs are grouped by
    # head), so any ascending arc subset stays head-grouped and segmented
    # minima need only the subset's own boundaries.
    arc_heads = np.repeat(np.arange(csr.n, dtype=np.int64), in_degrees)
    while pending.any():
        active = np.where(pending, dist, np.inf)
        bucket = np.floor(active.min() / delta)
        threshold = (bucket + 1.0) * delta
        while True:
            frontier = pending & (dist < threshold)
            if not frontier.any():
                break
            pending &= ~frontier
            # Relax only the arcs whose tail is in some row's frontier —
            # phase cost scales with the live arc set, not with nnz. Rows
            # where a live tail is *not* frontier still relax from its
            # current tentative distance: that is an upper bound, so the
            # extra relaxations are monotone no-ops at worst and the
            # per-row frontier mask (a (b, nnz) select) can be skipped.
            tails_live = frontier.any(axis=0)
            if tails_live.all():
                t_sel, w_sel = in_tails, in_weights
                heads_sel, seg_starts = nz, in_indptr[nz]
            else:
                sel = np.flatnonzero(tails_live[in_tails])
                if len(sel) == 0:
                    continue
                t_sel, w_sel = in_tails[sel], in_weights[sel]
                heads_sel, seg_starts = np.unique(
                    arc_heads[sel], return_index=True
                )
            cand = dist[:, t_sel] + w_sel[None, :]
            red = np.minimum.reduceat(cand, seg_starts, axis=1)
            improved_cols = red < dist[:, heads_sel]
            if improved_cols.any():
                sub = dist[:, heads_sel]
                np.minimum(sub, red, out=sub)
                dist[:, heads_sel] = sub
                pending[:, heads_sel] |= improved_cols


def _default_delta(csr: CSRGraph) -> float:
    """Default bucket width: the mean positive arc weight.

    Any positive width is correct (the bucket invariants do not depend on
    it); the mean weight makes unit-weight graphs degenerate to exactly
    one BFS level per bucket.
    """
    positive = csr.weights[csr.weights > 0]
    return float(positive.mean()) if len(positive) else 1.0


def _weighted_chunk_size(csr: CSRGraph, k: int) -> int:
    """Block size keeping both (b, n) and (b, nnz) temporaries bounded."""
    return max(1, min(k, DENSE_BLOCK_ENTRIES // max(csr.n, csr.nnz, 1)))


def batched_delta_stepping_distances(
    csr: CSRGraph,
    sources: np.ndarray,
    *,
    delta: float | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Weighted distances from every source at once — ``(len(sources), n)``.

    The weighted analog of :func:`batched_bfs_distances`: a vectorized
    multi-source delta-stepping sweep whose per-phase work is one
    arc-parallel relaxation (gather + segmented minimum) for the whole
    source block, instead of one binary-heap Dijkstra per source.
    Unreachable entries are ``np.inf``.

    ``delta`` is the bucket width (default: mean positive edge weight —
    any positive value yields identical results, only phase count
    changes); ``chunk_size`` bounds the dense block row count.
    Requires non-negative edge weights.
    """
    sources = np.asarray(sources, dtype=np.int64)
    n = csr.n
    k = len(sources)
    if k == 0:
        return np.empty((0, n), dtype=np.float64)
    if n == 0:
        raise IndexError("delta-stepping sources on an empty graph")
    if sources.min() < 0 or sources.max() >= n:
        raise IndexError(f"delta-stepping source out of range [0, {n})")
    if np.any(csr.weights < 0):
        raise ValueError("delta-stepping requires non-negative edge weights")
    if delta is None:
        delta = _default_delta(csr)
    if not delta > 0:
        raise ValueError(f"bucket width delta must be positive, got {delta}")
    if chunk_size is None:
        chunk_size = _weighted_chunk_size(csr, k)
    out = np.full((k, n), np.inf, dtype=np.float64)
    for lo in range(0, k, chunk_size):
        block = sources[lo : lo + chunk_size]
        b = len(block)
        rows = np.arange(b)
        dist = out[lo : lo + b]
        dist[rows, block] = 0.0
        pending = np.zeros((b, n), dtype=bool)
        pending[rows, block] = True
        _delta_stepping_block(csr, dist, pending, delta=delta)
    return out


def multi_source_delta_stepping(
    csr: CSRGraph,
    sources,
    *,
    delta: float | None = None,
) -> np.ndarray:
    """Weighted distance of every node to its *nearest* source — ``(n,)``.

    One delta-stepping sweep seeded at all sources simultaneously (a
    single block row), the weighted counterpart of the multi-source BFS
    distance-to-set query.
    """
    sources = np.asarray(list(sources), dtype=np.int64)
    n = csr.n
    if len(sources) == 0:
        raise ValueError("need at least one source")
    if n == 0:
        raise IndexError("delta-stepping sources on an empty graph")
    if sources.min() < 0 or sources.max() >= n:
        raise IndexError(f"delta-stepping source out of range [0, {n})")
    if np.any(csr.weights < 0):
        raise ValueError("delta-stepping requires non-negative edge weights")
    if delta is None:
        delta = _default_delta(csr)
    dist = np.full((1, n), np.inf, dtype=np.float64)
    dist[0, sources] = 0.0
    pending = np.zeros((1, n), dtype=bool)
    pending[0, sources] = True
    _delta_stepping_block(csr, dist, pending, delta=delta)
    return dist[0]


# ----------------------------------------------------------------------
# batched weighted Brandes (weighted betweenness dependencies)
#
# Distances come from the delta-stepping kernel; the shortest-path DAG
# is recovered arc-parallel ("tight" arcs satisfy dist[tail] + w =
# dist[head] within SP_TOL). sigma/delta accumulation walks nodes in
# per-row distance rank order — one vectorized gather per rank handles
# the whole source block, so the Python-level loop is O(n) total rather
# than O(n) per source.
# ----------------------------------------------------------------------
def batched_weighted_dependencies(
    csr: CSRGraph,
    sources: np.ndarray,
    *,
    delta: float | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Summed *weighted* Brandes dependencies of ``sources`` — ``(n,)``.

    The weighted counterpart of :func:`batched_brandes_dependencies`:
    per source block, distances are solved by the delta-stepping kernel,
    tight (shortest-path DAG) arcs are detected arc-parallel with the
    shared :data:`SP_TOL` tolerance, and sigma/delta accumulate in
    per-row distance rank order with one batched arc gather per rank.
    Results are chunking-independent. Requires an undirected CSR with
    strictly positive edge weights (zero-weight edges would create tied
    DAG layers the rank walk cannot order).
    """
    sources = np.asarray(sources, dtype=np.int64)
    n = csr.n
    dependency = np.zeros(n, dtype=np.float64)
    k = len(sources)
    if k == 0:
        return dependency
    if n == 0:
        raise IndexError("Brandes sources on an empty graph")
    if sources.min() < 0 or sources.max() >= n:
        raise IndexError(f"Brandes source out of range [0, {n})")
    if csr.directed:
        raise NotImplementedError(
            "batched_weighted_dependencies requires an undirected CSR"
        )
    if csr.nnz and not np.all(csr.weights > 0):
        raise ValueError(
            "weighted betweenness requires strictly positive edge weights"
        )
    if delta is None:
        delta = _default_delta(csr)
    if chunk_size is None:
        chunk_size = _weighted_chunk_size(csr, k)
    tails = csr.arc_tails()
    heads = csr.indices.astype(np.int64, copy=False)
    weights = csr.weights
    for lo in range(0, k, chunk_size):
        block = sources[lo : lo + chunk_size]
        b = len(block)
        rows = np.arange(b)
        dist = batched_delta_stepping_distances(
            csr, block, delta=delta, chunk_size=b
        )
        # Tight-arc masks for the whole block: (b, nnz) booleans.
        d_tail = dist[:, tails]
        d_head = dist[:, heads]
        with np.errstate(invalid="ignore"):  # inf - inf on unreachable arcs
            path = d_tail + weights[None, :]
            tol = SP_TOL * np.maximum(1.0, np.abs(d_head))
            tight_out = np.isfinite(path) & (np.abs(path - d_head) <= tol)
            # Reversed-arc tightness: arc (u -> v) viewed as "v precedes u".
            path_rev = d_head + weights[None, :]
            tol_rev = SP_TOL * np.maximum(1.0, np.abs(d_tail))
            tight_in = np.isfinite(path_rev) & (
                np.abs(path_rev - d_tail) <= tol_rev
            )
        order = np.argsort(dist, axis=1, kind="stable")
        sigma = np.zeros((b, n), dtype=np.float64)
        sigma[rows, block] = 1.0
        # Forward: settle nodes rank by rank, pushing sigma along tight
        # out-arcs. Within one rank step every (row, head) target is
        # unique, so a fancy-index += needs no scatter-add.
        for j in range(n):
            u = order[:, j]
            gather, counts = csr.arc_gather(u)
            if len(gather) == 0:
                continue
            row_ids = np.repeat(rows, counts)
            sel = tight_out[row_ids, gather]
            if not sel.any():
                continue
            rs = row_ids[sel]
            us = np.repeat(u, counts)[sel]
            sigma[rs, heads[gather[sel]]] += sigma[rs, us]
        # Backward: same rank walk in reverse, pulling dependencies to
        # tight predecessors (reversed-arc tightness).
        delta_acc = np.zeros((b, n), dtype=np.float64)
        for j in range(n - 1, -1, -1):
            w_node = order[:, j]
            gather, counts = csr.arc_gather(w_node)
            if len(gather) == 0:
                continue
            row_ids = np.repeat(rows, counts)
            sel = tight_in[row_ids, gather]
            if not sel.any():
                continue
            rs = row_ids[sel]
            ws = np.repeat(w_node, counts)[sel]
            vs = heads[gather[sel]]
            delta_acc[rs, vs] += (
                sigma[rs, vs] / sigma[rs, ws] * (1.0 + delta_acc[rs, ws])
            )
        delta_acc[rows, block] = 0.0
        dependency += delta_acc.sum(axis=0)
    return dependency


# ----------------------------------------------------------------------
# coordinate kernels (RIN scanning)
# ----------------------------------------------------------------------
def pairwise_distances(coords: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix of ``(n, d)`` coordinates.

    Uses the Gram-matrix identity ``|a-b|² = |a|² + |b|² - 2a·b`` — one
    BLAS matmul instead of an ``(n, n, d)`` broadcast — with a clip for
    the tiny negatives float cancellation produces on the diagonal.
    """
    coords = np.asarray(coords, dtype=np.float64)
    sq = np.einsum("ij,ij->i", coords, coords)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (coords @ coords.T)
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return np.sqrt(d2)


def sorted_contact_order(
    distance_matrix: np.ndarray, *, min_separation: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Upper-triangle pairs ordered by ascending distance.

    Returns ``(pairs, distances)`` with ``pairs[i] = (u, v)``, ``u < v``,
    ``|u - v| >= min_separation`` and ``distances`` sorted ascending.
    A cut-off sweep then reduces to ``searchsorted`` prefixes of this
    order: the edge set at cut-off ``c`` is ``pairs[:searchsorted(d, c)]``
    — the distance matrix is thresholded *once* for the whole sweep.
    """
    n = distance_matrix.shape[0]
    iu, iv = np.triu_indices(n, k=max(1, int(min_separation)))
    d = distance_matrix[iu, iv]
    order = np.argsort(d, kind="stable")
    pairs = np.column_stack([iu[order], iv[order]]).astype(np.int64)
    return pairs, d[order]


def morton_codes(
    points: np.ndarray,
    *,
    bits: int = 10,
    origin: np.ndarray | None = None,
    extent: float | None = None,
) -> tuple[np.ndarray, float, np.ndarray]:
    """Morton (Z-order) codes of a point set on a ``2**bits`` grid.

    Quantizes each axis of ``points`` (``(n, dim)``, any ``dim >= 1``) to
    ``bits``-bit cell indices over the set's bounding cube (one shared
    edge length, so cells are square/cubic at every refinement level) and
    bit-interleaves the axes into one int64 code per point. Sorting the
    codes sorts the points along the Z-order curve: every tree cell of
    the implied quad/octree is a *contiguous run* of the sorted order,
    and the cell at refinement level ``l`` containing a point is simply
    its code right-shifted by ``dim * (bits - l)`` — the property the
    Barnes-Hut tree build keys on.

    ``origin`` and ``extent`` override the quantization frame (default:
    the set's own bounding cube). Points outside an explicit frame are
    *clamped* into the boundary cells — callers that pass an
    outlier-robust frame (see ``BarnesHutTree``) keep full grid
    resolution over the bulk of the set at the cost of boundary cells
    whose geometric box understates their true point spread.

    Returns ``(codes, extent, origin)``: the unsorted per-point codes,
    the frame's edge length (cell width at level ``l`` is
    ``extent / 2**l``), and the frame's lower corner. Degenerate inputs
    (a single point, duplicated points) get ``extent=1.0`` so the
    quantization below never divides by zero.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be (n, dim), got shape {pts.shape}")
    n, dim = pts.shape
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if bits < 1 or bits * dim > 62:
        raise ValueError(f"need 1 <= bits and bits*dim <= 62, got bits={bits}")
    if n == 0:
        return np.empty(0, dtype=np.int64), 1.0, np.zeros(dim)
    origin = pts.min(axis=0) if origin is None else np.asarray(origin, dtype=np.float64)
    if extent is None:
        extent = float((pts.max(axis=0) - origin).max())
    extent = float(extent)
    if not extent > 0.0:
        extent = 1.0
    side = np.int64(1) << bits
    cells = ((pts - origin) * (float(side) / extent)).astype(np.int64)
    np.clip(cells, 0, int(side) - 1, out=cells)
    codes = np.zeros(n, dtype=np.int64)
    # Bit-interleave: axis a contributes bit b to code bit b*dim + a.
    # bits*dim vectorized passes over int64 arrays — negligible next to
    # the sort that consumes the codes.
    for b in range(bits):
        for a in range(dim):
            codes |= ((cells[:, a] >> b) & 1) << (b * dim + a)
    return codes, extent, origin


# ----------------------------------------------------------------------
# k-core (bulk peeling)
# ----------------------------------------------------------------------
def core_numbers(csr: CSRGraph) -> np.ndarray:
    """Per-node coreness via vectorized bulk peeling.

    Instead of removing one minimum-degree node at a time (the scalar
    Batagelj-Zaveršnik order), each round removes *every* node at the
    current peeling floor in whole waves: gather the wave's arcs, drop the
    removed endpoints, decrement survivor degrees with one ``bincount``.
    Round count is bounded by the degeneracy, wave count by the peeling
    depth — both tiny for RIN-like graphs.
    """
    n = csr.n
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core
    indptr, indices = csr.indptr, csr.indices
    # Removed nodes get a sentinel degree of n (no real degree reaches n),
    # which folds the aliveness test into the degree comparison — one
    # array op per wave instead of three.
    deg = csr.degrees().astype(np.int64).copy()
    remaining = n
    floor = 0
    while remaining:
        floor = max(floor, int(deg.min()))
        wave = (deg <= floor).nonzero()[0]
        while len(wave):
            core[wave] = floor
            deg[wave] = n
            remaining -= len(wave)
            if len(wave) <= 32:
                # Cascade waves are usually a handful of nodes: direct
                # slice concatenation beats the vectorized gather's fixed
                # call overhead at this size.
                heads = (
                    np.concatenate(
                        [indices[indptr[u] : indptr[u + 1]] for u in wave]
                    )
                    if len(wave) > 1
                    else indices[indptr[wave[0]] : indptr[wave[0] + 1]]
                )
            else:
                _, heads = expand_arcs(csr, wave)
            touched = heads[deg[heads] < n]
            if len(touched) == 0:
                break
            deg -= np.bincount(touched, minlength=n)
            wave = (deg <= floor).nonzero()[0]
    return core
