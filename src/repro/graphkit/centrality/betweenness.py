"""Betweenness centrality — Brandes' algorithm + sampling approximation.

The exact variant runs one Brandes dependency accumulation per source; the
per-source work is decomposed over a static chunking of the sources
(:func:`~repro.graphkit.parallel.parallel_for_chunks`), mirroring
NetworKit's OpenMP loop. Each source performs a level-synchronous BFS with
vectorized frontier expansion and a vectorized backward sweep over levels.

:class:`EstimateBetweenness` implements the classic source-sampling
estimator (Brandes & Pich): the same kernel from ``nsamples`` random pivots,
scaled by ``n / nsamples``.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..kernels import expand_arcs
from ..parallel import parallel_for_chunks
from . import reference
from .base import Centrality

__all__ = ["Betweenness", "EstimateBetweenness"]


def _brandes_source(
    csr: CSRGraph, s: int, dependency: np.ndarray
) -> None:
    """Accumulate Brandes dependencies of source ``s`` into ``dependency``.

    Unweighted shortest paths; both sweeps run on whole BFS levels via the
    shared :func:`~repro.graphkit.kernels.expand_arcs` gather — path counts
    and partial dependencies move along level arcs with bincount
    scatter-adds, never one node at a time.
    """
    n = csr.n
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    dist[s] = 0
    sigma[s] = 1.0
    levels: list[np.ndarray] = [np.asarray([s], dtype=np.int64)]

    # Forward phase: level-synchronous BFS counting shortest paths.
    frontier = levels[0]
    depth = 0
    while len(frontier):
        depth += 1
        tails, heads = expand_arcs(csr, frontier)
        if len(heads) == 0:
            break
        undiscovered = dist[heads] == -1
        new_nodes = np.unique(heads[undiscovered])
        if len(new_nodes):
            dist[new_nodes] = depth
        # Arcs that lie on shortest paths into the next level.
        on_sp = dist[heads] == depth
        if on_sp.any():
            sigma += np.bincount(
                heads[on_sp], weights=sigma[tails[on_sp]], minlength=n
            )
        if len(new_nodes) == 0:
            break
        frontier = new_nodes
        levels.append(new_nodes)

    # Backward phase: accumulate dependencies level by level.
    delta = np.zeros(n, dtype=np.float64)
    for level_nodes in reversed(levels[1:]):
        # For each node w at this level, push delta to predecessors v with
        # dist[v] = dist[w] - 1 along arcs (w -> v) in the (symmetric) CSR.
        ws, nbrs = expand_arcs(csr, level_nodes)
        if len(nbrs) == 0:
            continue
        preds = dist[nbrs] == dist[ws] - 1
        if not preds.any():
            continue
        v = nbrs[preds]
        w = ws[preds]
        contrib = (sigma[v] / sigma[w]) * (1.0 + delta[w])
        delta += np.bincount(v, weights=contrib, minlength=n)
    delta[s] = 0.0
    dependency += delta


class Betweenness(Centrality):
    """Exact betweenness centrality (Brandes 2001), unweighted paths.

    Parameters
    ----------
    g:
        The graph (undirected; each pair counted once).
    normalized:
        Scale scores by ``2 / ((n-1)(n-2))``.
    threads:
        Worker threads for the per-source loop (default: all).
    """

    name = "betweenness"

    def __init__(
        self,
        g,
        *,
        normalized: bool = False,
        threads: int | None = None,
        impl: str = "vectorized",
    ):
        super().__init__(g, normalized=normalized, impl=impl)
        self._threads = threads

    def _compute_reference(self, csr: CSRGraph) -> np.ndarray:
        if csr.directed:
            raise NotImplementedError(
                "Betweenness is implemented for undirected graphs (RINs)"
            )
        return reference.betweenness_scores(csr)

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        if csr.directed:
            raise NotImplementedError(
                "Betweenness is implemented for undirected graphs (RINs)"
            )
        n = csr.n
        partials = np.zeros(n, dtype=np.float64)
        lock_free_slots: list[np.ndarray] = []

        def run_chunk(start: int, stop: int) -> None:
            # Per-chunk private accumulator (OpenMP reduction idiom) —
            # avoids write races between chunks.
            local = np.zeros(n, dtype=np.float64)
            for s in range(start, stop):
                _brandes_source(csr, s, local)
            lock_free_slots.append(local)

        parallel_for_chunks(run_chunk, n, threads=self._threads)
        for local in lock_free_slots:
            partials += local
        if not csr.directed:
            partials /= 2.0  # each unordered pair contributed twice
        return partials

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n < 3:
            return scores
        scale = 2.0 / ((n - 1) * (n - 2))
        return scores * scale


class EstimateBetweenness(Centrality):
    """Sampled betweenness (Brandes & Pich pivots).

    Runs the Brandes kernel from ``nsamples`` uniformly sampled sources and
    scales by ``n / nsamples`` — an unbiased estimator of exact scores.

    Parameters
    ----------
    g:
        The graph.
    nsamples:
        Number of source pivots.
    normalized:
        Scale like the exact variant.
    seed:
        Sampling seed (deterministic pivots).
    """

    name = "betweenness-estimate"

    def __init__(
        self,
        g,
        nsamples: int = 64,
        *,
        normalized: bool = False,
        seed: int | None = 42,
        impl: str = "vectorized",
    ):
        if nsamples < 1:
            raise ValueError("nsamples must be >= 1")
        super().__init__(g, normalized=normalized, impl=impl)
        self._nsamples = nsamples
        self._seed = seed

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        if csr.directed:
            raise NotImplementedError(
                "EstimateBetweenness is implemented for undirected graphs"
            )
        n = csr.n
        scores = np.zeros(n, dtype=np.float64)
        if n == 0:
            return scores
        rng = np.random.default_rng(self._seed)
        k = min(self._nsamples, n)
        pivots = rng.choice(n, size=k, replace=False)
        for s in pivots:
            _brandes_source(csr, int(s), scores)
        scores *= n / k
        if not csr.directed:
            scores /= 2.0
        return scores

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n < 3:
            return scores
        return scores * (2.0 / ((n - 1) * (n - 2)))
