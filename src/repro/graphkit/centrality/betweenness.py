"""Betweenness centrality — batched Brandes + sampling approximation.

The default engine batches *sources*: sigma/delta accumulation runs as
dense ``(sources, nodes)`` matrix ops per BFS level
(:func:`~repro.graphkit.kernels.batched_brandes_dependencies`), processing
sources in memory-bounded blocks distributed over worker threads — one
SpMM per level for a whole block rather than one sweep per source. With
``weighted=True`` distances come from the multi-source delta-stepping
kernel and dependencies accumulate in distance rank order
(:func:`~repro.graphkit.kernels.batched_weighted_dependencies`).

``directed=True`` switches to the directed batched kernel
(:func:`~repro.graphkit.kernels.batched_brandes_dependencies_directed`):
forward sweeps over out-arcs, backward sweeps over the transposed
pattern, each ordered pair counted once (no halving).

Two slower engines remain selectable for benchmarking and differential
testing: ``impl="persource"`` is the superseded level-vectorized
one-sweep-per-source loop (unweighted only), ``impl="reference"`` the
textbook scalar Brandes. With ``weighted=True`` a third engine,
``impl="sampled"``, runs the seeded source-sampling estimator over the
delta-stepping kernel with a Hoeffding absolute-error bound
(:func:`sampled_betweenness_error_bound`), sharded across
:class:`~repro.graphkit.parallel.ShardedExecutor` workers with fixed
shard boundaries so results are bit-identical for any worker count.
``docs/KERNELS.md`` documents the block math and the selection rules.

:class:`EstimateBetweenness` implements the classic *unweighted*
source-sampling estimator (Brandes & Pich): the batched kernel over
``nsamples`` random pivots, scaled by ``n / nsamples``.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..kernels import (
    batched_brandes_dependencies,
    batched_brandes_dependencies_directed,
    batched_weighted_dependencies,
    expand_arcs,
)
from ..parallel import ShardedExecutor, parallel_for_chunks
from . import reference
from .base import Centrality

__all__ = [
    "Betweenness",
    "EstimateBetweenness",
    "sampled_betweenness_error_bound",
]

#: Fixed pivot-shard width of the sampled weighted estimator. Shard
#: boundaries depend only on the pivot list — never on the worker count —
#: so merging shard results in payload order is bit-identical for
#: ``workers=0`` (serial twin) and any pool width.
SAMPLED_SHARD = 32


def _sampled_dependency_shard(payload, arrays) -> np.ndarray:
    """Shard: summed weighted dependencies of one fixed pivot slice.

    Shared arrays are the CSR columns (``indptr``/``indices``/
    ``weights``); the payload is the shard's own pivot array. Pure
    function of both, per the shard→merge contract.
    """
    pivots = np.asarray(payload, dtype=np.int64)
    csr = CSRGraph(arrays["indptr"], arrays["indices"], arrays["weights"])
    return batched_weighted_dependencies(csr, pivots)


def sampled_betweenness_error_bound(
    n: int, nsamples: int, *, confidence: float = 0.95
) -> float:
    """Hoeffding absolute-error bound of the sampled estimator.

    Each pivot contributes ``(n/2)·dep_s(v) ∈ [0, n(n-2)/2]`` to the
    (unnormalized) estimate, whose mean over ``nsamples`` i.i.d. pivots
    is unbiased for the exact score. Hoeffding's inequality with a union
    bound over the ``n`` nodes then gives, with probability at least
    ``confidence``, for every node simultaneously::

        |estimate(v) - exact(v)| <= (n(n-2)/2) · sqrt(ln(2n/δ) / (2k))

    with ``δ = 1 - confidence`` and ``k = nsamples``. The bound shrinks
    monotonically in ``k`` and is reported in unnormalized score units;
    sampling all ``n`` sources (without replacement) is exact, so the
    bound collapses to 0 there.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if nsamples < 1:
        raise ValueError("nsamples must be >= 1")
    if n < 3 or nsamples >= n:
        return 0.0
    span = n * (n - 2) / 2.0
    delta = 1.0 - confidence
    return float(span * np.sqrt(np.log(2.0 * n / delta) / (2.0 * nsamples)))


def _brandes_source(
    csr: CSRGraph, s: int, dependency: np.ndarray
) -> None:
    """Accumulate Brandes dependencies of source ``s`` into ``dependency``.

    The superseded per-source engine (``impl="persource"``): unweighted
    shortest paths, one level-vectorized forward/backward sweep per
    source via the shared :func:`~repro.graphkit.kernels.expand_arcs`
    gather. Kept as the benchmark baseline the batched kernel is measured
    against.
    """
    n = csr.n
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    dist[s] = 0
    sigma[s] = 1.0
    levels: list[np.ndarray] = [np.asarray([s], dtype=np.int64)]

    # Forward phase: level-synchronous BFS counting shortest paths.
    frontier = levels[0]
    depth = 0
    while len(frontier):
        depth += 1
        tails, heads = expand_arcs(csr, frontier)
        if len(heads) == 0:
            break
        undiscovered = dist[heads] == -1
        new_nodes = np.unique(heads[undiscovered])
        if len(new_nodes):
            dist[new_nodes] = depth
        # Arcs that lie on shortest paths into the next level.
        on_sp = dist[heads] == depth
        if on_sp.any():
            sigma += np.bincount(
                heads[on_sp], weights=sigma[tails[on_sp]], minlength=n
            )
        if len(new_nodes) == 0:
            break
        frontier = new_nodes
        levels.append(new_nodes)

    # Backward phase: accumulate dependencies level by level.
    delta = np.zeros(n, dtype=np.float64)
    for level_nodes in reversed(levels[1:]):
        # For each node w at this level, push delta to predecessors v with
        # dist[v] = dist[w] - 1 along arcs (w -> v) in the (symmetric) CSR.
        ws, nbrs = expand_arcs(csr, level_nodes)
        if len(nbrs) == 0:
            continue
        preds = dist[nbrs] == dist[ws] - 1
        if not preds.any():
            continue
        v = nbrs[preds]
        w = ws[preds]
        contrib = (sigma[v] / sigma[w]) * (1.0 + delta[w])
        delta += np.bincount(v, weights=contrib, minlength=n)
    delta[s] = 0.0
    dependency += delta


class Betweenness(Centrality):
    """Exact betweenness centrality (Brandes 2001).

    Parameters
    ----------
    g:
        The graph (undirected by default; each pair counted once).
    normalized:
        Scale scores by ``2 / ((n-1)(n-2))`` (undirected) or
        ``1 / ((n-1)(n-2))`` (directed).
    weighted:
        Use edge weights as distances (strictly positive weights
        required). The vectorized engine then runs delta-stepping +
        rank-ordered accumulation; ``impl="persource"`` is unavailable.
    directed:
        Directed shortest-path semantics via the directed batched kernel
        (unweighted only; each *ordered* pair counted once). Accepts a
        directed CSR, or a symmetric one — where every unordered pair is
        seen in both directions, so scores are exactly twice the
        undirected ones.
    threads:
        Worker threads distributing the source blocks (default: all).
    impl:
        ``"vectorized"`` (batched Brandes, default), ``"persource"``
        (superseded per-source level sweep, unweighted only),
        ``"sampled"`` (seeded pivot-sampling estimator, weighted only —
        see :func:`sampled_betweenness_error_bound`) or ``"reference"``
        (textbook scalar Brandes).
    nsamples:
        Pivot count for ``impl="sampled"`` (default 64).
    seed:
        Pivot-sampling seed for ``impl="sampled"`` (deterministic).
    workers:
        ``impl="sampled"`` process-pool width for the pivot shards
        (0 = serial in-process twin, bit-identical to any pool width).
    packed:
        Frontier representation of the unweighted kernels: ``None``
        (default) auto-selects bit-packed frontiers above
        :data:`~repro.graphkit.kernels.BITPACK_THRESHOLD` nodes,
        ``True``/``False`` force the choice.
    """

    name = "betweenness"
    extra_impls = ("persource", "sampled")

    def __init__(
        self,
        g,
        *,
        normalized: bool = False,
        weighted: bool = False,
        directed: bool = False,
        threads: int | None = None,
        impl: str = "vectorized",
        nsamples: int = 64,
        seed: int | None = 42,
        workers: int = 0,
        packed: bool | None = None,
    ):
        super().__init__(g, normalized=normalized, impl=impl)
        self._weighted = bool(weighted)
        self._directed = bool(directed)
        self._threads = threads
        self._nsamples = int(nsamples)
        self._seed = seed
        self._workers = int(workers)
        self._packed = packed
        if self._weighted and impl == "persource":
            raise ValueError(
                "impl='persource' is the superseded unweighted sweep; "
                "weighted betweenness has only 'vectorized', 'sampled' "
                "and 'reference'"
            )
        if impl == "sampled" and not self._weighted:
            raise ValueError(
                "impl='sampled' is the weighted pivot estimator; for "
                "unweighted sampling use EstimateBetweenness"
            )
        if impl == "sampled" and self._nsamples < 1:
            raise ValueError("nsamples must be >= 1")
        if self._directed and self._weighted:
            raise NotImplementedError(
                "directed betweenness is unweighted-only"
            )
        if self._directed and impl in ("persource", "sampled"):
            raise ValueError(
                f"impl={impl!r} is undirected-only; directed betweenness "
                "has 'vectorized' and 'reference'"
            )

    def _check_semantics(self, csr: CSRGraph) -> None:
        if csr.directed and not self._directed:
            raise NotImplementedError(
                "this CSR is directed; pass Betweenness(directed=True) "
                "for directed shortest-path semantics"
            )

    def error_bound(self, confidence: float = 0.95) -> float:
        """Absolute-error bound of ``impl="sampled"`` at this sample count.

        Hoeffding bound per :func:`sampled_betweenness_error_bound`,
        scaled to the same units as :meth:`scores` (i.e. divided by the
        normalization constant when ``normalized=True``).
        """
        if self._impl != "sampled":
            raise RuntimeError("error_bound() applies to impl='sampled'")
        n = self._csr().n
        bound = sampled_betweenness_error_bound(
            n, min(self._nsamples, max(n, 1)), confidence=confidence
        )
        if self._normalized and n >= 3:
            bound *= 2.0 / ((n - 1) * (n - 2))
        return bound

    def _compute_reference(self, csr: CSRGraph) -> np.ndarray:
        self._check_semantics(csr)
        if self._directed:
            return reference.directed_betweenness_scores(csr)
        if self._weighted:
            return reference.weighted_betweenness_scores(csr)
        return reference.betweenness_scores(csr)

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        self._check_semantics(csr)
        n = csr.n
        if self._directed:
            kernel = batched_brandes_dependencies_directed
        elif self._weighted:
            kernel = batched_weighted_dependencies
        else:

            def kernel(c, srcs):
                return batched_brandes_dependencies(
                    c, srcs, packed=self._packed
                )

        partials = np.zeros(n, dtype=np.float64)
        lock_free_slots: list[np.ndarray] = []

        def run_chunk(start: int, stop: int) -> None:
            # Per-chunk private accumulator (OpenMP reduction idiom) —
            # avoids write races between chunks; the kernel blocks the
            # chunk's sources internally to bound dense memory.
            if stop <= start:
                return
            lock_free_slots.append(kernel(csr, np.arange(start, stop)))

        parallel_for_chunks(run_chunk, n, threads=self._threads)
        for local in lock_free_slots:
            partials += local
        if not self._directed:
            partials /= 2.0  # each unordered pair contributed twice
        return partials

    def _compute_sampled(self, csr: CSRGraph) -> np.ndarray:
        self._check_semantics(csr)
        n = csr.n
        if n == 0:
            return np.zeros(0)
        rng = np.random.default_rng(self._seed)
        k = min(self._nsamples, n)
        pivots = rng.choice(n, size=k, replace=False).astype(np.int64)
        executor = ShardedExecutor(self._workers)
        try:
            dataset = executor.share(
                indptr=csr.indptr, indices=csr.indices, weights=csr.weights
            )
            payloads = [
                pivots[lo : lo + SAMPLED_SHARD]
                for lo in range(0, k, SAMPLED_SHARD)
            ]
            parts = executor.run(_sampled_dependency_shard, payloads, dataset)
        finally:
            executor.close()
        dependency = np.zeros(n, dtype=np.float64)
        for part in parts:  # payload order — deterministic float sums
            dependency += part
        dependency *= n / k
        dependency /= 2.0
        return dependency

    def _compute_persource(self, csr: CSRGraph) -> np.ndarray:
        self._check_semantics(csr)
        n = csr.n
        partials = np.zeros(n, dtype=np.float64)
        lock_free_slots: list[np.ndarray] = []

        def run_chunk(start: int, stop: int) -> None:
            local = np.zeros(n, dtype=np.float64)
            for s in range(start, stop):
                _brandes_source(csr, s, local)
            lock_free_slots.append(local)

        parallel_for_chunks(run_chunk, n, threads=self._threads)
        for local in lock_free_slots:
            partials += local
        partials /= 2.0
        return partials

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n < 3:
            return scores
        pair_count = 1.0 if self._directed else 2.0
        scale = pair_count / ((n - 1) * (n - 2))
        return scores * scale


class EstimateBetweenness(Centrality):
    """Sampled betweenness (Brandes & Pich pivots).

    Runs the batched Brandes kernel from ``nsamples`` uniformly sampled
    sources (one multi-source block sweep) and scales by
    ``n / nsamples`` — an unbiased estimator of exact scores.

    Parameters
    ----------
    g:
        The graph.
    nsamples:
        Number of source pivots.
    normalized:
        Scale like the exact variant.
    seed:
        Sampling seed (deterministic pivots).
    packed:
        Frontier representation of the batched kernel (``None`` =
        auto-select above the bit-packing threshold).
    """

    name = "betweenness-estimate"

    def __init__(
        self,
        g,
        nsamples: int = 64,
        *,
        normalized: bool = False,
        seed: int | None = 42,
        impl: str = "vectorized",
        packed: bool | None = None,
    ):
        if nsamples < 1:
            raise ValueError("nsamples must be >= 1")
        super().__init__(g, normalized=normalized, impl=impl)
        self._nsamples = nsamples
        self._seed = seed
        self._packed = packed

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        if csr.directed:
            raise NotImplementedError(
                "EstimateBetweenness is implemented for undirected graphs"
            )
        n = csr.n
        if n == 0:
            return np.zeros(0)
        rng = np.random.default_rng(self._seed)
        k = min(self._nsamples, n)
        pivots = rng.choice(n, size=k, replace=False)
        scores = batched_brandes_dependencies(csr, pivots, packed=self._packed)
        scores *= n / k
        scores /= 2.0
        return scores

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n < 3:
            return scores
        return scores * (2.0 / ((n - 1) * (n - 2)))
