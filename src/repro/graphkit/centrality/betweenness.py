"""Betweenness centrality — batched Brandes + sampling approximation.

The default engine batches *sources*: sigma/delta accumulation runs as
dense ``(sources, nodes)`` matrix ops per BFS level
(:func:`~repro.graphkit.kernels.batched_brandes_dependencies`), processing
sources in memory-bounded blocks distributed over worker threads — one
SpMM per level for a whole block rather than one sweep per source. With
``weighted=True`` distances come from the multi-source delta-stepping
kernel and dependencies accumulate in distance rank order
(:func:`~repro.graphkit.kernels.batched_weighted_dependencies`).

Two slower engines remain selectable for benchmarking and differential
testing: ``impl="persource"`` is the superseded level-vectorized
one-sweep-per-source loop (unweighted only), ``impl="reference"`` the
textbook scalar Brandes. ``docs/KERNELS.md`` documents the block math and
the selection rules.

:class:`EstimateBetweenness` implements the classic source-sampling
estimator (Brandes & Pich): the batched kernel over ``nsamples`` random
pivots, scaled by ``n / nsamples``.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..kernels import (
    batched_brandes_dependencies,
    batched_weighted_dependencies,
    expand_arcs,
)
from ..parallel import parallel_for_chunks
from . import reference
from .base import Centrality

__all__ = ["Betweenness", "EstimateBetweenness"]


def _brandes_source(
    csr: CSRGraph, s: int, dependency: np.ndarray
) -> None:
    """Accumulate Brandes dependencies of source ``s`` into ``dependency``.

    The superseded per-source engine (``impl="persource"``): unweighted
    shortest paths, one level-vectorized forward/backward sweep per
    source via the shared :func:`~repro.graphkit.kernels.expand_arcs`
    gather. Kept as the benchmark baseline the batched kernel is measured
    against.
    """
    n = csr.n
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    dist[s] = 0
    sigma[s] = 1.0
    levels: list[np.ndarray] = [np.asarray([s], dtype=np.int64)]

    # Forward phase: level-synchronous BFS counting shortest paths.
    frontier = levels[0]
    depth = 0
    while len(frontier):
        depth += 1
        tails, heads = expand_arcs(csr, frontier)
        if len(heads) == 0:
            break
        undiscovered = dist[heads] == -1
        new_nodes = np.unique(heads[undiscovered])
        if len(new_nodes):
            dist[new_nodes] = depth
        # Arcs that lie on shortest paths into the next level.
        on_sp = dist[heads] == depth
        if on_sp.any():
            sigma += np.bincount(
                heads[on_sp], weights=sigma[tails[on_sp]], minlength=n
            )
        if len(new_nodes) == 0:
            break
        frontier = new_nodes
        levels.append(new_nodes)

    # Backward phase: accumulate dependencies level by level.
    delta = np.zeros(n, dtype=np.float64)
    for level_nodes in reversed(levels[1:]):
        # For each node w at this level, push delta to predecessors v with
        # dist[v] = dist[w] - 1 along arcs (w -> v) in the (symmetric) CSR.
        ws, nbrs = expand_arcs(csr, level_nodes)
        if len(nbrs) == 0:
            continue
        preds = dist[nbrs] == dist[ws] - 1
        if not preds.any():
            continue
        v = nbrs[preds]
        w = ws[preds]
        contrib = (sigma[v] / sigma[w]) * (1.0 + delta[w])
        delta += np.bincount(v, weights=contrib, minlength=n)
    delta[s] = 0.0
    dependency += delta


class Betweenness(Centrality):
    """Exact betweenness centrality (Brandes 2001).

    Parameters
    ----------
    g:
        The graph (undirected; each pair counted once).
    normalized:
        Scale scores by ``2 / ((n-1)(n-2))``.
    weighted:
        Use edge weights as distances (strictly positive weights
        required). The vectorized engine then runs delta-stepping +
        rank-ordered accumulation; ``impl="persource"`` is unavailable.
    threads:
        Worker threads distributing the source blocks (default: all).
    impl:
        ``"vectorized"`` (batched Brandes, default), ``"persource"``
        (superseded per-source level sweep, unweighted only) or
        ``"reference"`` (textbook scalar Brandes).
    """

    name = "betweenness"
    extra_impls = ("persource",)

    def __init__(
        self,
        g,
        *,
        normalized: bool = False,
        weighted: bool = False,
        threads: int | None = None,
        impl: str = "vectorized",
    ):
        super().__init__(g, normalized=normalized, impl=impl)
        self._weighted = bool(weighted)
        self._threads = threads
        if self._weighted and impl == "persource":
            raise ValueError(
                "impl='persource' is the superseded unweighted sweep; "
                "weighted betweenness has only 'vectorized' and 'reference'"
            )

    def _check_undirected(self, csr: CSRGraph) -> None:
        if csr.directed:
            raise NotImplementedError(
                "Betweenness is implemented for undirected graphs (RINs)"
            )

    def _compute_reference(self, csr: CSRGraph) -> np.ndarray:
        self._check_undirected(csr)
        if self._weighted:
            return reference.weighted_betweenness_scores(csr)
        return reference.betweenness_scores(csr)

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        self._check_undirected(csr)
        n = csr.n
        kernel = (
            batched_weighted_dependencies
            if self._weighted
            else batched_brandes_dependencies
        )
        partials = np.zeros(n, dtype=np.float64)
        lock_free_slots: list[np.ndarray] = []

        def run_chunk(start: int, stop: int) -> None:
            # Per-chunk private accumulator (OpenMP reduction idiom) —
            # avoids write races between chunks; the kernel blocks the
            # chunk's sources internally to bound dense memory.
            if stop <= start:
                return
            lock_free_slots.append(kernel(csr, np.arange(start, stop)))

        parallel_for_chunks(run_chunk, n, threads=self._threads)
        for local in lock_free_slots:
            partials += local
        partials /= 2.0  # each unordered pair contributed twice
        return partials

    def _compute_persource(self, csr: CSRGraph) -> np.ndarray:
        self._check_undirected(csr)
        n = csr.n
        partials = np.zeros(n, dtype=np.float64)
        lock_free_slots: list[np.ndarray] = []

        def run_chunk(start: int, stop: int) -> None:
            local = np.zeros(n, dtype=np.float64)
            for s in range(start, stop):
                _brandes_source(csr, s, local)
            lock_free_slots.append(local)

        parallel_for_chunks(run_chunk, n, threads=self._threads)
        for local in lock_free_slots:
            partials += local
        partials /= 2.0
        return partials

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n < 3:
            return scores
        scale = 2.0 / ((n - 1) * (n - 2))
        return scores * scale


class EstimateBetweenness(Centrality):
    """Sampled betweenness (Brandes & Pich pivots).

    Runs the batched Brandes kernel from ``nsamples`` uniformly sampled
    sources (one multi-source block sweep) and scales by
    ``n / nsamples`` — an unbiased estimator of exact scores.

    Parameters
    ----------
    g:
        The graph.
    nsamples:
        Number of source pivots.
    normalized:
        Scale like the exact variant.
    seed:
        Sampling seed (deterministic pivots).
    """

    name = "betweenness-estimate"

    def __init__(
        self,
        g,
        nsamples: int = 64,
        *,
        normalized: bool = False,
        seed: int | None = 42,
        impl: str = "vectorized",
    ):
        if nsamples < 1:
            raise ValueError("nsamples must be >= 1")
        super().__init__(g, normalized=normalized, impl=impl)
        self._nsamples = nsamples
        self._seed = seed

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        if csr.directed:
            raise NotImplementedError(
                "EstimateBetweenness is implemented for undirected graphs"
            )
        n = csr.n
        if n == 0:
            return np.zeros(0)
        rng = np.random.default_rng(self._seed)
        k = min(self._nsamples, n)
        pivots = rng.choice(n, size=k, replace=False)
        scores = batched_brandes_dependencies(csr, pivots)
        scores *= n / k
        scores /= 2.0
        return scores

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n < 3:
            return scores
        return scores * (2.0 / ((n - 1) * (n - 2)))
