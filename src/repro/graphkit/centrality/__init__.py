"""Centrality measures (NetworKit ``centrality`` module analog).

Every exact measure accepts ``impl="vectorized"`` (batched CSR kernel
engine, default) or ``impl="reference"`` (naive scalar engine, for
differential testing); ``Betweenness`` additionally keeps the superseded
per-source sweep as ``impl="persource"`` and, with ``weighted=True``,
the seeded pivot estimator as ``impl="sampled"`` (Hoeffding error bound
via ``sampled_betweenness_error_bound``). Shortest-path measures take
``weighted=True`` to read edge weights as distances (SpMM BFS swaps for
multi-source delta-stepping); ``Betweenness(directed=True)`` runs the
directed batched Brandes kernel. Sampling approximations
(EstimateBetweenness, ApproxCloseness) have no scalar twin and raise
``NotImplementedError`` on ``impl="reference"`` rather than silently
running the fast engine. See ``docs/KERNELS.md`` for the kernel block
math and the full selection rules.
"""

from . import reference
from .base import Centrality
from .betweenness import (
    Betweenness,
    EstimateBetweenness,
    sampled_betweenness_error_bound,
)
from .closeness import ApproxCloseness, Closeness, HarmonicCloseness
from .degree import DegreeCentrality
from .eigenvector import EigenvectorCentrality
from .katz import KatzCentrality
from .pagerank import PageRank, PageRankNorm
from .topcloseness import TopCloseness

__all__ = [
    "TopCloseness",
    "Centrality",
    "Betweenness",
    "EstimateBetweenness",
    "Closeness",
    "ApproxCloseness",
    "HarmonicCloseness",
    "DegreeCentrality",
    "EigenvectorCentrality",
    "KatzCentrality",
    "PageRank",
    "PageRankNorm",
    "sampled_betweenness_error_bound",
    "reference",
]
