"""Centrality measures (NetworKit ``centrality`` module analog)."""

from .base import Centrality
from .betweenness import Betweenness, EstimateBetweenness
from .closeness import ApproxCloseness, Closeness, HarmonicCloseness
from .degree import DegreeCentrality
from .eigenvector import EigenvectorCentrality
from .katz import KatzCentrality
from .pagerank import PageRank, PageRankNorm
from .topcloseness import TopCloseness

__all__ = [
    "TopCloseness",
    "Centrality",
    "Betweenness",
    "EstimateBetweenness",
    "Closeness",
    "ApproxCloseness",
    "HarmonicCloseness",
    "DegreeCentrality",
    "EigenvectorCentrality",
    "KatzCentrality",
    "PageRank",
    "PageRankNorm",
]
