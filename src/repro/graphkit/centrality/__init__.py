"""Centrality measures (NetworKit ``centrality`` module analog).

Every exact measure accepts ``impl="vectorized"`` (CSR kernel engine,
default) or ``impl="reference"`` (naive scalar engine, for differential
testing). Sampling approximations (EstimateBetweenness, ApproxCloseness)
have no scalar twin and raise ``NotImplementedError`` on
``impl="reference"`` rather than silently running the fast engine.
"""

from . import reference
from .base import Centrality
from .betweenness import Betweenness, EstimateBetweenness
from .closeness import ApproxCloseness, Closeness, HarmonicCloseness
from .degree import DegreeCentrality
from .eigenvector import EigenvectorCentrality
from .katz import KatzCentrality
from .pagerank import PageRank, PageRankNorm
from .topcloseness import TopCloseness

__all__ = [
    "TopCloseness",
    "Centrality",
    "Betweenness",
    "EstimateBetweenness",
    "Closeness",
    "ApproxCloseness",
    "HarmonicCloseness",
    "DegreeCentrality",
    "EigenvectorCentrality",
    "KatzCentrality",
    "PageRank",
    "PageRankNorm",
    "reference",
]
