"""Naive per-node reference implementations of the centralities.

These are the textbook scalar algorithms — Python loops over adjacency
views, no batched kernels — kept as the ``impl="reference"`` path of every
:class:`~repro.graphkit.centrality.base.Centrality`. They exist for
*differential testing*: the vectorized kernels must reproduce these
results bit-for-bit (up to float tolerance) on every fixture, so any
regression in the fast path is caught by comparing against code simple
enough to audit by eye.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from ..csr import CSRGraph
from ..distance import dijkstra
from ..kernels import SP_TOL

__all__ = [
    "degree_scores",
    "closeness_scores",
    "harmonic_scores",
    "betweenness_scores",
    "directed_betweenness_scores",
    "weighted_closeness_scores",
    "weighted_harmonic_scores",
    "weighted_betweenness_scores",
    "pagerank_scores",
    "katz_series_scores",
]


def _bfs(csr: CSRGraph, s: int) -> np.ndarray:
    """Textbook queue BFS returning hop distances (-1 unreachable)."""
    dist = np.full(csr.n, -1, dtype=np.int64)
    dist[s] = 0
    queue: deque[int] = deque([s])
    while queue:
        u = queue.popleft()
        for v in csr.neighbors(u):
            v = int(v)
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def degree_scores(csr: CSRGraph, *, weighted: bool = False) -> np.ndarray:
    """Per-node (weighted) degree by explicit iteration."""
    out = np.zeros(csr.n, dtype=np.float64)
    for u in range(csr.n):
        if weighted:
            out[u] = float(csr.neighbor_weights(u).sum())
        else:
            out[u] = float(len(csr.neighbors(u)))
    return out


def closeness_scores(csr: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Generalized closeness: ``(raw, reach)`` with one queue BFS per node."""
    n = csr.n
    raw = np.zeros(n, dtype=np.float64)
    reach = np.zeros(n, dtype=np.int64)
    for s in range(n):
        d = _bfs(csr, s)
        reached = d > 0
        total = float(d[reached].sum())
        r = int(reached.sum()) + 1
        reach[s] = r
        raw[s] = (r - 1) / total if total > 0 else 0.0
    return raw, reach


def harmonic_scores(csr: CSRGraph) -> np.ndarray:
    """Harmonic centrality with one queue BFS per node."""
    n = csr.n
    raw = np.zeros(n, dtype=np.float64)
    for s in range(n):
        d = _bfs(csr, s)
        for x in d:
            if x > 0:
                raw[s] += 1.0 / float(x)
    return raw


def betweenness_scores(csr: CSRGraph) -> np.ndarray:
    """Textbook Brandes (2001) with explicit stacks and predecessor lists.

    Returns the undirected convention (each unordered pair counted once).
    """
    n = csr.n
    dependency = np.zeros(n, dtype=np.float64)
    for s in range(n):
        stack: list[int] = []
        preds: list[list[int]] = [[] for _ in range(n)]
        sigma = np.zeros(n, dtype=np.float64)
        dist = np.full(n, -1, dtype=np.int64)
        sigma[s] = 1.0
        dist[s] = 0
        queue: deque[int] = deque([s])
        while queue:
            u = queue.popleft()
            stack.append(u)
            for v in csr.neighbors(u):
                v = int(v)
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
                if dist[v] == dist[u] + 1:
                    sigma[v] += sigma[u]
                    preds[v].append(u)
        delta = np.zeros(n, dtype=np.float64)
        while stack:
            w = stack.pop()
            for v in preds[w]:
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != s:
                dependency[w] += delta[w]
    return dependency / 2.0


def directed_betweenness_scores(csr: CSRGraph) -> np.ndarray:
    """Textbook *directed* Brandes: BFS over out-arcs, no halving.

    Each ordered pair ``(s, t)`` is counted exactly once, so on a
    symmetric CSR the result is twice :func:`betweenness_scores`.
    """
    n = csr.n
    dependency = np.zeros(n, dtype=np.float64)
    for s in range(n):
        stack: list[int] = []
        preds: list[list[int]] = [[] for _ in range(n)]
        sigma = np.zeros(n, dtype=np.float64)
        dist = np.full(n, -1, dtype=np.int64)
        sigma[s] = 1.0
        dist[s] = 0
        queue: deque[int] = deque([s])
        while queue:
            u = queue.popleft()
            stack.append(u)
            for v in csr.neighbors(u):  # CSR rows = out-adjacency
                v = int(v)
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
                if dist[v] == dist[u] + 1:
                    sigma[v] += sigma[u]
                    preds[v].append(u)
        delta = np.zeros(n, dtype=np.float64)
        while stack:
            w = stack.pop()
            for v in preds[w]:
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != s:
                dependency[w] += delta[w]
    return dependency


def weighted_closeness_scores(csr: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Generalized *weighted* closeness: ``(raw, reach)``, one heap
    Dijkstra per node (the scalar twin of the delta-stepping kernel)."""
    n = csr.n
    raw = np.zeros(n, dtype=np.float64)
    reach = np.zeros(n, dtype=np.int64)
    for s in range(n):
        d = dijkstra(csr, s)
        reached = np.isfinite(d) & (d > 0)
        total = float(d[reached].sum())
        r = int(reached.sum()) + 1
        reach[s] = r
        raw[s] = (r - 1) / total if total > 0 else 0.0
    return raw, reach


def weighted_harmonic_scores(csr: CSRGraph) -> np.ndarray:
    """Weighted harmonic centrality with one heap Dijkstra per node."""
    n = csr.n
    raw = np.zeros(n, dtype=np.float64)
    for s in range(n):
        d = dijkstra(csr, s)
        for x in d:
            if np.isfinite(x) and x > 0:
                raw[s] += 1.0 / float(x)
    return raw


def weighted_betweenness_scores(csr: CSRGraph) -> np.ndarray:
    """Textbook weighted Brandes: Dijkstra settle order + predecessor
    lists, tight arcs detected with the shared ``SP_TOL`` tolerance
    (undirected convention: each unordered pair counted once)."""
    n = csr.n
    dependency = np.zeros(n, dtype=np.float64)
    for s in range(n):
        dist = np.full(n, np.inf)
        sigma = np.zeros(n, dtype=np.float64)
        preds: list[list[int]] = [[] for _ in range(n)]
        dist[s] = 0.0
        sigma[s] = 1.0
        done = np.zeros(n, dtype=bool)
        settle_order: list[int] = []
        heap = [(0.0, s)]
        while heap:
            d, u = heapq.heappop(heap)
            if done[u]:
                continue
            done[u] = True
            settle_order.append(u)
            for v, w in zip(csr.neighbors(u), csr.neighbor_weights(u)):
                v = int(v)
                nd = d + w
                if not np.isfinite(dist[v]):
                    dist[v] = nd
                    sigma[v] = sigma[u]
                    preds[v] = [u]
                    heapq.heappush(heap, (nd, v))
                    continue
                tol = SP_TOL * max(1.0, dist[v])
                if nd < dist[v] - tol:
                    dist[v] = nd
                    sigma[v] = sigma[u]
                    preds[v] = [u]
                    heapq.heappush(heap, (nd, v))
                elif abs(nd - dist[v]) <= tol and not done[v]:
                    sigma[v] += sigma[u]
                    preds[v].append(u)
        delta = np.zeros(n, dtype=np.float64)
        for w_node in reversed(settle_order):
            for v in preds[w_node]:
                delta[v] += (sigma[v] / sigma[w_node]) * (1.0 + delta[w_node])
            if w_node != s:
                dependency[w_node] += delta[w_node]
    return dependency / 2.0


def pagerank_scores(
    csr: CSRGraph, damp: float, *, tol: float = 1e-10, max_iterations: int = 500
) -> tuple[np.ndarray, int]:
    """Scalar power iteration (pull along in-arcs); returns (scores, iters)."""
    n = csr.n
    if n == 0:
        return np.zeros(0), 0
    out_strength = np.zeros(n, dtype=np.float64)
    for u in range(n):
        out_strength[u] = float(csr.neighbor_weights(u).sum())
    x = np.full(n, 1.0 / n)
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        y = np.zeros(n, dtype=np.float64)
        dangling_mass = 0.0
        for u in range(n):
            if out_strength[u] == 0.0:
                dangling_mass += x[u]
                continue
            share = x[u] / out_strength[u]
            for v, w in zip(csr.neighbors(u), csr.neighbor_weights(u)):
                y[int(v)] += w * share
        y = damp * y + (damp * dangling_mass + (1.0 - damp)) / n
        if float(np.abs(y - x).sum()) < tol:
            x = y
            break
        x = y
    return x, iterations


def katz_series_scores(
    csr: CSRGraph,
    alpha: float,
    beta: float,
    *,
    max_terms: int = 1000,
    tol: float = 1e-10,
) -> np.ndarray:
    """Truncated Katz power series with a scalar in-arc accumulation."""
    n = csr.n
    x = np.zeros(n, dtype=np.float64)
    term = np.full(n, beta, dtype=np.float64)
    for _ in range(max_terms):
        nxt = np.zeros(n, dtype=np.float64)
        for u in range(n):
            for v, w in zip(csr.neighbors(u), csr.neighbor_weights(u)):
                nxt[int(v)] += w * term[u]
        term = alpha * nxt
        x += term
        if float(np.abs(term).sum()) < tol:
            break
    return x
