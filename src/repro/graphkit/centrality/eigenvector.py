"""Eigenvector centrality via power iteration on the sparse adjacency."""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from .base import Centrality

__all__ = ["EigenvectorCentrality"]


class EigenvectorCentrality(Centrality):
    """Principal eigenvector of the adjacency matrix.

    Power iteration with L2 normalization each step; converges for
    connected non-bipartite graphs. Scores are reported L2-normalized
    (NetworKit convention) or max-normalized when ``normalized=True``.

    Parameters
    ----------
    g:
        Undirected graph.
    tol:
        L1 convergence tolerance between iterates.
    max_iterations:
        Iteration cap (a warning-free graceful stop, like NetworKit).
    """

    name = "eigenvector"

    def __init__(
        self,
        g,
        *,
        tol: float = 1e-9,
        max_iterations: int = 1000,
        normalized: bool = False,
    ):
        if tol <= 0:
            raise ValueError("tol must be positive")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        super().__init__(g, normalized=normalized)
        self._tol = tol
        self._max_iterations = max_iterations
        self._iterations = 0

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n == 0:
            return np.zeros(0)
        adj = csr.to_scipy()
        x = np.full(n, 1.0 / np.sqrt(n))
        self._iterations = 0
        for _ in range(self._max_iterations):
            self._iterations += 1
            y = adj @ x
            norm = np.linalg.norm(y)
            if norm == 0.0:
                # No edges: centrality is uniform zero.
                return np.zeros(n)
            y /= norm
            if np.abs(y - x).sum() < self._tol:
                x = y
                break
            x = y
        # Fix the sign so that scores are non-negative (Perron vector).
        if x.sum() < 0:
            x = -x
        return np.maximum(x, 0.0)

    def iterations(self) -> int:
        """Power-iteration count of the last :meth:`run`."""
        return self._iterations
