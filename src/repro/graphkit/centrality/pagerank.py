"""PageRank with the evolving-graph normalization of Berberich et al.

The paper (§II-A) highlights a NetworKit addition: a PageRank
normalization strategy based on Berberich, Bedathur, Weikum & Vazirgiannis
(WWW 2007) that makes scores comparable across different graphs — scores
are divided by the score mass a completely disconnected node would get,
``(1 - d) / n``, so a node with no in-links always has normalized score 1
regardless of graph size.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..csr import CSRGraph
from ..kernels import spmv_transpose
from . import reference
from .base import Centrality

__all__ = ["PageRank", "PageRankNorm"]


class PageRankNorm(Enum):
    """Normalization strategies for PageRank scores."""

    NONE = "none"  # raw probabilities (sum to 1)
    L1 = "l1"  # explicit L1 normalization (same as NONE up to dangling mass)
    EVOLVING = "evolving"  # Berberich et al. cross-graph comparable scores


class PageRank(Centrality):
    """Damped PageRank via power iteration with dangling-mass teleport.

    Parameters
    ----------
    g:
        Graph (undirected graphs are treated as bidirectional).
    damp:
        Damping factor ``d`` (probability of following an edge).
    tol:
        L1 convergence tolerance.
    norm:
        Score normalization (:class:`PageRankNorm`); ``EVOLVING`` divides by
        ``(1 - d)/n`` making scores comparable across graphs of different
        sizes, per Berberich et al.
    """

    name = "pagerank"

    def __init__(
        self,
        g,
        damp: float = 0.85,
        *,
        tol: float = 1e-10,
        max_iterations: int = 500,
        norm: PageRankNorm = PageRankNorm.NONE,
        impl: str = "vectorized",
    ):
        if not 0.0 < damp < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damp}")
        super().__init__(g, normalized=False, impl=impl)
        self._damp = float(damp)
        self._tol = tol
        self._max_iterations = max_iterations
        self._norm = norm
        self._iterations = 0

    def _apply_norm(self, x: np.ndarray, n: int) -> np.ndarray:
        if self._norm is PageRankNorm.L1:
            total = x.sum()
            if total > 0:
                x = x / total
        elif self._norm is PageRankNorm.EVOLVING:
            x = x / ((1.0 - self._damp) / n)
        return x

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n == 0:
            return np.zeros(0)
        out_strength = csr.weighted_degrees()
        dangling = out_strength == 0.0
        inv_out = np.where(dangling, 0.0, 1.0 / np.maximum(out_strength, 1e-300))
        d = self._damp
        x = np.full(n, 1.0 / n)
        self._iterations = 0
        for _ in range(self._max_iterations):
            self._iterations += 1
            # Pull formulation: x' = d * (A^T (x / outdeg)) + teleport mass.
            contrib = spmv_transpose(csr, x * inv_out)
            dangling_mass = float(x[dangling].sum())
            y = d * contrib + (d * dangling_mass + (1.0 - d)) / n
            if np.abs(y - x).sum() < self._tol:
                x = y
                break
            x = y
        return self._apply_norm(x, n)

    def _compute_reference(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n == 0:
            return np.zeros(0)
        x, self._iterations = reference.pagerank_scores(
            csr, self._damp, tol=self._tol, max_iterations=self._max_iterations
        )
        return self._apply_norm(x, n)

    def iterations(self) -> int:
        """Power-iteration count of the last :meth:`run`."""
        return self._iterations
