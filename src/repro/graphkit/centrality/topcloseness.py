"""Top-k closeness with BFS cut-off pruning (Bergamini et al. style).

NetworKit's claim to fame (§II: "numerous unique algorithms") includes
exact top-k closeness without computing all n BFS trees. This simplified
variant keeps the key idea: process nodes in decreasing degree order and
abort a node's BFS as soon as an upper bound on its closeness falls below
the current k-th best — on RIN-like graphs most BFS trees stop early.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..csr import CSRGraph
from ..graph import Graph

__all__ = ["TopCloseness"]


class TopCloseness:
    """Exact top-k closeness (generalized/harmonic-free variant).

    Parameters
    ----------
    g:
        Undirected graph.
    k:
        How many top nodes to return.

    Notes
    -----
    Uses the level-based upper bound *within the node's connected
    component* (size ``n_c``): after expanding BFS to depth ``d`` with
    ``r`` nodes reached and distance sum ``S_d``, the remaining
    ``n_c − r`` component members each contribute at least ``d + 1``, so
    with the generalized-closeness correction

        closeness(u) ≤ (n_c − 1)² / ((n − 1) · (S_d + (n_c − r)(d + 1)))

    If this bound drops below the running k-th best, the BFS aborts.
    Component sizes are computed once up front, which keeps the bound
    sound on the fragmented RINs low cut-offs produce.
    """

    def __init__(self, g: Graph | CSRGraph, k: int = 10):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._g = g
        self._k = k
        self._top: list[tuple[int, float]] | None = None
        self._pruned = 0

    def _closeness_with_cutoff(
        self, csr: CSRGraph, source: int, kth_best: float, n: int, n_c: int
    ) -> float | None:
        """BFS from source; None if provably below ``kth_best``.

        ``n_c`` is the size of the source's connected component.
        """
        dist_sum = 0.0
        reached = 1
        visited = np.zeros(n, dtype=bool)
        visited[source] = True
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            nxt = []
            for u in frontier:
                for v in csr.neighbors(u):
                    if not visited[v]:
                        visited[v] = True
                        nxt.append(int(v))
            dist_sum += depth * len(nxt)
            reached += len(nxt)
            frontier = nxt
            if kth_best > 0.0 and reached < n_c:
                optimistic = dist_sum + (n_c - reached) * (depth + 1)
                bound = (
                    (n_c - 1) ** 2 / ((n - 1) * optimistic)
                    if optimistic > 0 and n > 1
                    else 0.0
                )
                if bound < kth_best:
                    self._pruned += 1
                    return None
        if dist_sum == 0.0:
            return 0.0
        r = reached
        return ((r - 1) / dist_sum) * ((r - 1) / (n - 1)) if n > 1 else 0.0

    def run(self) -> "TopCloseness":
        """Compute the top-k list."""
        from ..components import connected_components

        csr = self._g.csr() if isinstance(self._g, Graph) else self._g
        n = csr.n
        self._pruned = 0
        count, labels = connected_components(csr)
        sizes = np.bincount(labels, minlength=max(count, 1)) if n else np.zeros(1)
        # Min-heap of (score, -node): ties keep the smaller node id, the
        # same convention as Centrality.ranking().
        heap: list[tuple[float, int]] = []
        # High-degree nodes first: likely high closeness, tightens the
        # pruning threshold early.
        order = np.argsort(-csr.degrees(), kind="stable")
        for u in order:
            kth_best = heap[0][0] if len(heap) >= self._k else 0.0
            n_c = int(sizes[labels[int(u)]])
            score = self._closeness_with_cutoff(
                csr, int(u), kth_best, n, n_c
            )
            if score is None:
                continue
            entry = (score, -int(u))
            if len(heap) < self._k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
        self._top = sorted(
            ((-neg_node, score) for score, neg_node in heap),
            key=lambda t: (-t[1], t[0]),
        )
        return self

    def topkNodesList(self) -> list[int]:  # noqa: N802 - NetworKit naming
        """The top-k node ids, best first."""
        if self._top is None:
            raise RuntimeError("call run() first")
        return [node for node, _ in self._top]

    def topkScoresList(self) -> list[float]:  # noqa: N802 - NetworKit naming
        """The top-k scores, best first."""
        if self._top is None:
            raise RuntimeError("call run() first")
        return [score for _, score in self._top]

    @property
    def pruned_bfs_count(self) -> int:
        """How many BFS trees the bound aborted (the speed-up source)."""
        return self._pruned
