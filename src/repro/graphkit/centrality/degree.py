"""Degree centrality."""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from . import reference
from .base import Centrality

__all__ = ["DegreeCentrality"]


class DegreeCentrality(Centrality):
    """Degree (or strength) centrality.

    Parameters
    ----------
    g:
        The graph.
    normalized:
        Divide by ``n - 1`` (fraction of possible neighbours).
    weighted:
        Use the sum of incident edge weights instead of the edge count.
    """

    name = "degree"

    def __init__(
        self,
        g,
        *,
        normalized: bool = False,
        weighted: bool = False,
        impl: str = "vectorized",
    ):
        super().__init__(g, normalized=normalized, impl=impl)
        self._weighted = bool(weighted)

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        if self._weighted:
            return csr.weighted_degrees()
        return csr.degrees().astype(np.float64)

    def _compute_reference(self, csr: CSRGraph) -> np.ndarray:
        return reference.degree_scores(csr, weighted=self._weighted)

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        return scores / (n - 1) if n > 1 else scores

    def _centralization_denominator(self, n: int, peak: float) -> float:
        # Freeman: the star graph achieves Σ(max − deg) = (n−1)(n−2).
        scale = 1.0 / (n - 1) if self._normalized and n > 1 else 1.0
        return (n - 1) * (n - 2) * scale
