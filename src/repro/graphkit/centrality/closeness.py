"""Closeness and harmonic centrality (exact, weighted and sampled).

Closeness of ``u`` is ``(r_u - 1) / Σ_v d(u, v)`` restricted to the
``r_u`` nodes reachable from ``u`` (the Wasserman-Faust / NetworKit
``ClosenessVariant.Generalized`` convention, well-defined on disconnected
RINs at small cut-offs).  Harmonic centrality sums ``1 / d(u, v)`` and
needs no reachability correction.

Both measures batch their sources: hop distances come from the SpMM BFS
kernel, weighted distances (``weighted=True``) from the multi-source
delta-stepping kernel — no per-source queue or heap loop on either path
(see ``docs/KERNELS.md``).
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..kernels import (
    batched_bfs_distances,
    batched_delta_stepping_distances,
    source_blocks,
)
from ..parallel import parallel_for_chunks
from . import reference
from .base import Centrality

__all__ = ["Closeness", "HarmonicCloseness", "ApproxCloseness"]


def _block_distances(csr: CSRGraph, lo: int, hi: int, weighted: bool) -> np.ndarray:
    """Distances of the ``[lo, hi)`` source block as a float matrix with
    ``np.inf`` for unreachable pairs (uniform across both kernels)."""
    if weighted:
        return batched_delta_stepping_distances(csr, np.arange(lo, hi))
    d = batched_bfs_distances(csr, np.arange(lo, hi)).astype(np.float64)
    d[d < 0] = np.inf
    return d


class Closeness(Centrality):
    """Exact closeness centrality via batched multi-source sweeps.

    The vectorized engine sweeps blocks of sources with the level-
    synchronous :func:`~repro.graphkit.kernels.batched_bfs_distances`
    kernel — or, with ``weighted=True``, the bucketed
    :func:`~repro.graphkit.kernels.batched_delta_stepping_distances`
    kernel — one compiled pass per level/bucket for the whole block;
    blocks are distributed over worker threads. ``impl="reference"`` runs
    the textbook one-traversal-per-node loop instead (queue BFS, or heap
    Dijkstra when weighted).

    Parameters
    ----------
    g:
        The graph.
    normalized:
        Multiply by ``(r_u - 1) / (n - 1)`` so scores are comparable across
        components (generalized closeness); without it the per-component
        value is returned.
    weighted:
        Use edge weights as distances (non-negative weights required).
    threads:
        Worker threads for the per-block loop.
    """

    name = "closeness"

    def __init__(
        self,
        g,
        *,
        normalized: bool = True,
        weighted: bool = False,
        threads: int | None = None,
        impl: str = "vectorized",
    ):
        super().__init__(g, normalized=normalized, impl=impl)
        self._weighted = bool(weighted)
        self._threads = threads

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        raw = np.zeros(n, dtype=np.float64)
        reach = np.zeros(n, dtype=np.int64)

        def run_chunk(start: int, stop: int) -> None:
            for lo, hi in source_blocks(start, stop, n):
                d = _block_distances(csr, lo, hi, self._weighted)
                reached = np.isfinite(d) & (d > 0)
                total = np.where(reached, d, 0.0).sum(axis=1)
                r = reached.sum(axis=1) + 1  # including the source itself
                reach[lo:hi] = r
                np.divide(r - 1, total, out=raw[lo:hi], where=total > 0)

        parallel_for_chunks(run_chunk, n, threads=self._threads)
        self._reach = reach
        return raw

    def _compute_reference(self, csr: CSRGraph) -> np.ndarray:
        if self._weighted:
            raw, reach = reference.weighted_closeness_scores(csr)
        else:
            raw, reach = reference.closeness_scores(csr)
        self._reach = reach
        return raw

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n <= 1:
            return scores
        return scores * (self._reach - 1) / (n - 1)


class HarmonicCloseness(Centrality):
    """Harmonic centrality: ``Σ_{v≠u} 1 / d(u, v)`` (0 for unreachable).

    Batched like :class:`Closeness`; ``weighted=True`` swaps the SpMM BFS
    kernel for the delta-stepping kernel.
    """

    name = "harmonic"

    def __init__(
        self,
        g,
        *,
        normalized: bool = True,
        weighted: bool = False,
        threads: int | None = None,
        impl: str = "vectorized",
    ):
        super().__init__(g, normalized=normalized, impl=impl)
        self._weighted = bool(weighted)
        self._threads = threads

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        raw = np.zeros(n, dtype=np.float64)

        def run_chunk(start: int, stop: int) -> None:
            for lo, hi in source_blocks(start, stop, n):
                d = _block_distances(csr, lo, hi, self._weighted)
                positive = np.isfinite(d) & (d > 0)
                inv = np.where(positive, 1.0 / np.where(positive, d, 1.0), 0.0)
                raw[lo:hi] = inv.sum(axis=1)

        parallel_for_chunks(run_chunk, n, threads=self._threads)
        return raw

    def _compute_reference(self, csr: CSRGraph) -> np.ndarray:
        if self._weighted:
            return reference.weighted_harmonic_scores(csr)
        return reference.harmonic_scores(csr)

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        return scores / (n - 1) if n > 1 else scores


class ApproxCloseness(Centrality):
    """Sampled closeness (Eppstein-Wang style pivot estimator).

    Estimates ``Σ_v d(u, v)`` from BFS trees of ``nsamples`` random pivots:
    the average pivot distance scaled by ``n`` approximates each node's
    farness. Suitable for graphs where one BFS per node is too expensive.
    """

    name = "closeness-approx"

    def __init__(
        self,
        g,
        nsamples: int = 64,
        *,
        normalized: bool = True,
        seed: int | None = 42,
        impl: str = "vectorized",
    ):
        if nsamples < 1:
            raise ValueError("nsamples must be >= 1")
        super().__init__(g, normalized=normalized, impl=impl)
        self._nsamples = nsamples
        self._seed = seed

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n == 0:
            return np.zeros(0)
        rng = np.random.default_rng(self._seed)
        k = min(self._nsamples, n)
        pivots = rng.choice(n, size=k, replace=False)
        # All pivot BFS trees in one batched sweep (undirected graphs, so
        # pivot->node distances equal node->pivot distances).
        d = batched_bfs_distances(csr, pivots)
        reached = d >= 0
        farness = np.where(reached, d, 0).sum(axis=0).astype(np.float64)
        hits = reached.sum(axis=0).astype(np.int64)
        est = np.zeros(n, dtype=np.float64)
        ok = (hits > 0) & (farness > 0)
        # Scale mean pivot distance to a full-farness estimate over n nodes.
        est[ok] = (hits[ok]) / farness[ok] * (hits[ok] / k)
        return est

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        peak = scores.max() if len(scores) else 0.0
        return scores / peak if peak > 0 else scores
