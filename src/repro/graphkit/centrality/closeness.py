"""Closeness and harmonic centrality (exact and sampled).

Closeness of ``u`` is ``(r_u - 1) / Σ_v d(u, v)`` restricted to the
``r_u`` nodes reachable from ``u`` (the Wasserman-Faust / NetworKit
``ClosenessVariant.Generalized`` convention, well-defined on disconnected
RINs at small cut-offs).  Harmonic centrality sums ``1 / d(u, v)`` and
needs no reachability correction.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..distance import bfs_distances
from ..parallel import parallel_for_chunks
from .base import Centrality

__all__ = ["Closeness", "HarmonicCloseness", "ApproxCloseness"]


class Closeness(Centrality):
    """Exact closeness centrality via one BFS per node.

    Parameters
    ----------
    g:
        The graph.
    normalized:
        Multiply by ``(r_u - 1) / (n - 1)`` so scores are comparable across
        components (generalized closeness); without it the per-component
        value is returned.
    threads:
        Worker threads for the per-source loop.
    """

    name = "closeness"

    def __init__(self, g, *, normalized: bool = True, threads: int | None = None):
        super().__init__(g, normalized=normalized)
        self._threads = threads

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        raw = np.zeros(n, dtype=np.float64)
        reach = np.zeros(n, dtype=np.int64)

        def run_chunk(start: int, stop: int) -> None:
            for s in range(start, stop):
                d = bfs_distances(csr, s)
                reached = d > 0
                total = float(d[reached].sum())
                r = int(reached.sum()) + 1  # including s itself
                reach[s] = r
                raw[s] = (r - 1) / total if total > 0 else 0.0

        parallel_for_chunks(run_chunk, n, threads=self._threads)
        self._reach = reach
        return raw

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n <= 1:
            return scores
        return scores * (self._reach - 1) / (n - 1)


class HarmonicCloseness(Centrality):
    """Harmonic centrality: ``Σ_{v≠u} 1 / d(u, v)`` (0 for unreachable)."""

    name = "harmonic"

    def __init__(self, g, *, normalized: bool = True, threads: int | None = None):
        super().__init__(g, normalized=normalized)
        self._threads = threads

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        raw = np.zeros(n, dtype=np.float64)

        def run_chunk(start: int, stop: int) -> None:
            for s in range(start, stop):
                d = bfs_distances(csr, s)
                reached = d > 0
                if reached.any():
                    raw[s] = float((1.0 / d[reached]).sum())

        parallel_for_chunks(run_chunk, n, threads=self._threads)
        return raw

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        return scores / (n - 1) if n > 1 else scores


class ApproxCloseness(Centrality):
    """Sampled closeness (Eppstein-Wang style pivot estimator).

    Estimates ``Σ_v d(u, v)`` from BFS trees of ``nsamples`` random pivots:
    the average pivot distance scaled by ``n`` approximates each node's
    farness. Suitable for graphs where one BFS per node is too expensive.
    """

    name = "closeness-approx"

    def __init__(
        self, g, nsamples: int = 64, *, normalized: bool = True, seed: int | None = 42
    ):
        if nsamples < 1:
            raise ValueError("nsamples must be >= 1")
        super().__init__(g, normalized=normalized)
        self._nsamples = nsamples
        self._seed = seed

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n == 0:
            return np.zeros(0)
        rng = np.random.default_rng(self._seed)
        k = min(self._nsamples, n)
        pivots = rng.choice(n, size=k, replace=False)
        farness = np.zeros(n, dtype=np.float64)
        hits = np.zeros(n, dtype=np.int64)
        for s in pivots:
            d = bfs_distances(csr, int(s))
            reached = d >= 0
            farness[reached] += d[reached]
            hits[reached] += 1
        est = np.zeros(n, dtype=np.float64)
        ok = (hits > 0) & (farness > 0)
        # Scale mean pivot distance to a full-farness estimate over n nodes.
        est[ok] = (hits[ok]) / farness[ok] * (hits[ok] / k)
        return est

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        peak = scores.max() if len(scores) else 0.0
        return scores / peak if peak > 0 else scores
