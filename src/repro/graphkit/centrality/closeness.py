"""Closeness and harmonic centrality (exact and sampled).

Closeness of ``u`` is ``(r_u - 1) / Σ_v d(u, v)`` restricted to the
``r_u`` nodes reachable from ``u`` (the Wasserman-Faust / NetworKit
``ClosenessVariant.Generalized`` convention, well-defined on disconnected
RINs at small cut-offs).  Harmonic centrality sums ``1 / d(u, v)`` and
needs no reachability correction.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..kernels import batched_bfs_distances, source_blocks
from ..parallel import parallel_for_chunks
from . import reference
from .base import Centrality

__all__ = ["Closeness", "HarmonicCloseness", "ApproxCloseness"]


class Closeness(Centrality):
    """Exact closeness centrality via batched multi-source BFS.

    The vectorized engine sweeps blocks of sources with the level-
    synchronous :func:`~repro.graphkit.kernels.batched_bfs_distances`
    kernel (one sparse-dense product per BFS level for the whole block);
    blocks are distributed over worker threads. ``impl="reference"`` runs
    the textbook one-queue-BFS-per-node loop instead.

    Parameters
    ----------
    g:
        The graph.
    normalized:
        Multiply by ``(r_u - 1) / (n - 1)`` so scores are comparable across
        components (generalized closeness); without it the per-component
        value is returned.
    threads:
        Worker threads for the per-block loop.
    """

    name = "closeness"

    def __init__(
        self,
        g,
        *,
        normalized: bool = True,
        threads: int | None = None,
        impl: str = "vectorized",
    ):
        super().__init__(g, normalized=normalized, impl=impl)
        self._threads = threads

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        raw = np.zeros(n, dtype=np.float64)
        reach = np.zeros(n, dtype=np.int64)

        def run_chunk(start: int, stop: int) -> None:
            for lo, hi in source_blocks(start, stop, n):
                d = batched_bfs_distances(csr, np.arange(lo, hi))
                reached = d > 0
                total = np.where(reached, d, 0).sum(axis=1).astype(np.float64)
                r = reached.sum(axis=1) + 1  # including the source itself
                reach[lo:hi] = r
                np.divide(r - 1, total, out=raw[lo:hi], where=total > 0)

        parallel_for_chunks(run_chunk, n, threads=self._threads)
        self._reach = reach
        return raw

    def _compute_reference(self, csr: CSRGraph) -> np.ndarray:
        raw, reach = reference.closeness_scores(csr)
        self._reach = reach
        return raw

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n <= 1:
            return scores
        return scores * (self._reach - 1) / (n - 1)


class HarmonicCloseness(Centrality):
    """Harmonic centrality: ``Σ_{v≠u} 1 / d(u, v)`` (0 for unreachable)."""

    name = "harmonic"

    def __init__(
        self,
        g,
        *,
        normalized: bool = True,
        threads: int | None = None,
        impl: str = "vectorized",
    ):
        super().__init__(g, normalized=normalized, impl=impl)
        self._threads = threads

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        raw = np.zeros(n, dtype=np.float64)

        def run_chunk(start: int, stop: int) -> None:
            for lo, hi in source_blocks(start, stop, n):
                d = batched_bfs_distances(csr, np.arange(lo, hi))
                inv = np.where(d > 0, 1.0 / np.maximum(d, 1), 0.0)
                raw[lo:hi] = inv.sum(axis=1)

        parallel_for_chunks(run_chunk, n, threads=self._threads)
        return raw

    def _compute_reference(self, csr: CSRGraph) -> np.ndarray:
        return reference.harmonic_scores(csr)

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        return scores / (n - 1) if n > 1 else scores


class ApproxCloseness(Centrality):
    """Sampled closeness (Eppstein-Wang style pivot estimator).

    Estimates ``Σ_v d(u, v)`` from BFS trees of ``nsamples`` random pivots:
    the average pivot distance scaled by ``n`` approximates each node's
    farness. Suitable for graphs where one BFS per node is too expensive.
    """

    name = "closeness-approx"

    def __init__(
        self,
        g,
        nsamples: int = 64,
        *,
        normalized: bool = True,
        seed: int | None = 42,
        impl: str = "vectorized",
    ):
        if nsamples < 1:
            raise ValueError("nsamples must be >= 1")
        super().__init__(g, normalized=normalized, impl=impl)
        self._nsamples = nsamples
        self._seed = seed

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n == 0:
            return np.zeros(0)
        rng = np.random.default_rng(self._seed)
        k = min(self._nsamples, n)
        pivots = rng.choice(n, size=k, replace=False)
        # All pivot BFS trees in one batched sweep (undirected graphs, so
        # pivot->node distances equal node->pivot distances).
        d = batched_bfs_distances(csr, pivots)
        reached = d >= 0
        farness = np.where(reached, d, 0).sum(axis=0).astype(np.float64)
        hits = reached.sum(axis=0).astype(np.int64)
        est = np.zeros(n, dtype=np.float64)
        ok = (hits > 0) & (farness > 0)
        # Scale mean pivot distance to a full-farness estimate over n nodes.
        est[ok] = (hits[ok]) / farness[ok] * (hits[ok] / k)
        return est

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        peak = scores.max() if len(scores) else 0.0
        return scores / peak if peak > 0 else scores
