"""Katz centrality.

``x = Σ_{k≥1} α^k A^k 1`` — solved either by the direct sparse linear
system ``(I - αA)x = α A 1`` (default, exact) or by truncated power series
for very large graphs. α must satisfy ``α < 1/λ_max``; the default picks
``0.9 / λ_max_upper_bound`` with the max-degree bound.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as splinalg

__all__ = ["KatzCentrality"]

from ..csr import CSRGraph
from ..kernels import spmv_transpose
from . import reference
from .base import Centrality


class KatzCentrality(Centrality):
    """Katz centrality with automatic safe damping.

    Parameters
    ----------
    g:
        The graph.
    alpha:
        Damping factor; ``None`` selects ``0.9 / Δ`` (Δ = max degree), which
        is always below the spectral radius bound.
    beta:
        Constant per-node base weight.
    method:
        ``'direct'`` (sparse solve) or ``'series'`` (truncated power sum).
    """

    name = "katz"

    def __init__(
        self,
        g,
        alpha: float | None = None,
        beta: float = 1.0,
        *,
        method: str = "direct",
        normalized: bool = False,
        max_terms: int = 1000,
        tol: float = 1e-10,
        impl: str = "vectorized",
    ):
        if method not in ("direct", "series"):
            raise ValueError(f"unknown method {method!r}")
        super().__init__(g, normalized=normalized, impl=impl)
        self._alpha = alpha
        self._beta = float(beta)
        self._method = method
        self._max_terms = max_terms
        self._tol = tol

    def effective_alpha(self) -> float:
        """The α actually used (resolved against the degree bound)."""
        csr = self._csr()
        if self._alpha is not None:
            return float(self._alpha)
        max_deg = int(csr.degrees().max()) if csr.n else 0
        return 0.9 / max_deg if max_deg > 0 else 0.1

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        n = csr.n
        if n == 0:
            return np.zeros(0)
        alpha = self.effective_alpha()
        adj = csr.to_scipy()
        ones = np.full(n, self._beta)
        if self._method == "direct":
            system = sparse.identity(n, format="csr") - alpha * adj.T
            rhs = alpha * (adj.T @ ones)
            x = splinalg.spsolve(system.tocsc(), rhs)
        else:
            x = np.zeros(n)
            term = ones.copy()
            for _ in range(self._max_terms):
                term = alpha * spmv_transpose(csr, term)
                x += term
                if np.abs(term).sum() < self._tol:
                    break
        return np.asarray(x, dtype=np.float64)

    def _compute_reference(self, csr: CSRGraph) -> np.ndarray:
        if csr.n == 0:
            return np.zeros(0)
        return reference.katz_series_scores(
            csr,
            self.effective_alpha(),
            self._beta,
            max_terms=self._max_terms,
            tol=min(self._tol, 1e-12),
        )

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        norm = np.linalg.norm(scores)
        return scores / norm if norm > 0 else scores
