"""Common base class for centrality algorithms (NetworKit API shape).

Every centrality follows the NetworKit run-pattern::

    alg = Betweenness(G)
    alg.run()
    alg.scores()      # list/array of per-node scores
    alg.score(u)      # single node
    alg.ranking()     # [(node, score)] sorted descending

Subclasses implement :meth:`_compute` returning the raw score vector.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from ..graph import Graph

__all__ = ["Centrality"]


#: Valid values for the ``impl`` selector shared by every centrality.
IMPLEMENTATIONS = ("vectorized", "reference")


class Centrality:
    """Abstract base: run-once centrality with cached scores.

    Every subclass carries two interchangeable engines selected by the
    ``impl`` keyword: ``"vectorized"`` (default) runs on the CSR kernel
    layer (:mod:`repro.graphkit.kernels`), ``"reference"`` runs the naive
    scalar algorithm (:mod:`repro.graphkit.centrality.reference`). The two
    must agree within float tolerance — the differential test suite
    enforces it — so the reference path doubles as executable
    documentation of each measure's semantics.

    A subclass may keep *additional* engines (e.g. a superseded fast path
    retained for benchmarking) by listing their names in ``extra_impls``
    and implementing ``_compute_<name>``; ``docs/KERNELS.md`` documents
    the selection rules.
    """

    name: str = "centrality"

    #: Engine names accepted beyond the shared ("vectorized", "reference")
    #: pair; each must have a matching ``_compute_<name>`` method.
    extra_impls: tuple[str, ...] = ()

    def __init__(
        self,
        g: Graph | CSRGraph,
        *,
        normalized: bool = False,
        impl: str = "vectorized",
    ):
        allowed = IMPLEMENTATIONS + type(self).extra_impls
        if impl not in allowed:
            raise ValueError(f"impl must be one of {allowed}, got {impl!r}")
        self._graph = g
        self._normalized = bool(normalized)
        self._impl = impl
        self._scores: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph | CSRGraph:
        """The input graph."""
        return self._graph

    def _csr(self) -> CSRGraph:
        g = self._graph
        return g.csr() if isinstance(g, Graph) else g

    @property
    def impl(self) -> str:
        """The selected engine ('vectorized' or 'reference')."""
        return self._impl

    def _compute(self, csr: CSRGraph) -> np.ndarray:
        raise NotImplementedError

    def _compute_reference(self, csr: CSRGraph) -> np.ndarray:
        """Naive scalar engine; fails loudly when a measure has none.

        A silent fallback to the vectorized engine would make differential
        tests pass vacuously, so measures without a reference twin (the
        sampling approximations) reject ``impl="reference"`` here.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no reference engine; use the default "
            "impl='vectorized'"
        )

    def _normalize(self, scores: np.ndarray, csr: CSRGraph) -> np.ndarray:
        """Default normalization: scale max score to 1."""
        peak = scores.max() if len(scores) else 0.0
        return scores / peak if peak > 0 else scores

    # ------------------------------------------------------------------
    def run(self) -> "Centrality":
        """Compute (and cache) the score vector."""
        csr = self._csr()
        if self._impl == "reference":
            compute = self._compute_reference
        elif self._impl == "vectorized":
            compute = self._compute
        else:
            compute = getattr(self, f"_compute_{self._impl}")
        scores = np.asarray(compute(csr), dtype=np.float64)
        if scores.shape != (csr.n,):
            raise AssertionError(
                f"{type(self).__name__} produced shape {scores.shape}, "
                f"expected ({csr.n},)"
            )
        if self._normalized:
            scores = self._normalize(scores, csr)
        self._scores = scores
        return self

    def _require(self) -> np.ndarray:
        if self._scores is None:
            raise RuntimeError(f"call {type(self).__name__}.run() first")
        return self._scores

    def scores(self) -> list[float]:
        """Per-node scores as a list (NetworKit returns a list)."""
        return self._require().tolist()

    def scores_array(self) -> np.ndarray:
        """Per-node scores as the underlying NumPy array (no copy)."""
        return self._require()

    def score(self, u: int) -> float:
        """Score of node ``u``."""
        return float(self._require()[u])

    def ranking(self) -> list[tuple[int, float]]:
        """Nodes with scores, best first (ties by node id)."""
        scores = self._require()
        order = np.lexsort((np.arange(len(scores)), -scores))
        return [(int(u), float(scores[u])) for u in order]

    def maximum(self) -> float:
        """Largest score."""
        scores = self._require()
        return float(scores.max()) if len(scores) else 0.0

    def _centralization_denominator(self, n: int, peak: float) -> float:
        """Maximum possible Σ(max − c_u); generic bound is (n−1)·max.

        Measure-specific subclasses override this with the Freeman
        denominator (the star graph's sum), so the star scores exactly 1.
        """
        return (n - 1) * peak

    def centralization(self) -> float:
        """Freeman centralization: Σ(max − c_u) / theoretical maximum."""
        scores = self._require()
        n = len(scores)
        if n <= 1:
            return 0.0
        peak = scores.max()
        denom = self._centralization_denominator(n, peak)
        if denom <= 0:
            return 0.0
        return float((peak * n - scores.sum()) / denom)
