"""repro.graphkit — the NetworKit-analog network-analysis substrate.

A from-scratch, NumPy-vectorized reimplementation of the NetworKit feature
set the paper relies on: a dynamic :class:`Graph`, centralities
(:mod:`~repro.graphkit.centrality`), community detection
(:mod:`~repro.graphkit.community`), components, shortest paths, graph
generators, 3D graph drawing (:mod:`~repro.graphkit.layout`, including
Maxent-Stress) and graph IO.

The public API intentionally mirrors NetworKit's run-pattern::

    from repro import graphkit as gk
    g = gk.generators.erdos_renyi(100, 0.05, seed=1)
    bc = gk.centrality.Betweenness(g).run()
    scores = bc.scores()
"""

from . import centrality, community, generators, io, kernels, layout
from .components import ConnectedComponents, connected_components, largest_component
from .coreness import CoreDecomposition, core_decomposition, local_clustering
from .csr import CSRDelta, CSRGraph, CSRSnapshotBuffer, pack_edge_keys
from .distance import (
    APSP,
    BFS,
    Diameter,
    all_pairs_distances,
    bfs_distances,
    dijkstra,
    multi_source_bfs,
    multi_source_dijkstra,
)
from .graph import Graph
from .incremental import IncrementalMeasures, canonical_components, full_measures
from .parallel import get_num_threads, set_num_threads
from .service import (
    ComputeService,
    ComputeSession,
    ServiceExecutor,
    configure_compute_service,
    get_compute_service,
    shutdown_compute_service,
)

__all__ = [
    "ComputeService",
    "ComputeSession",
    "ServiceExecutor",
    "configure_compute_service",
    "get_compute_service",
    "shutdown_compute_service",
    "Graph",
    "CSRGraph",
    "CSRDelta",
    "CSRSnapshotBuffer",
    "pack_edge_keys",
    "CoreDecomposition",
    "core_decomposition",
    "local_clustering",
    "centrality",
    "community",
    "kernels",
    "generators",
    "layout",
    "io",
    "ConnectedComponents",
    "connected_components",
    "largest_component",
    "IncrementalMeasures",
    "canonical_components",
    "full_measures",
    "BFS",
    "APSP",
    "Diameter",
    "bfs_distances",
    "dijkstra",
    "multi_source_bfs",
    "multi_source_dijkstra",
    "all_pairs_distances",
    "set_num_threads",
    "get_num_threads",
]
