"""Core dynamic graph data structure.

The :class:`Graph` mirrors the feature set of NetworKit's ``Graph``: a
node-indexed, optionally weighted, optionally directed graph with dynamic
edge insertion/removal and fast conversion to CSR (compressed sparse row)
arrays for vectorized kernels.

Design notes (HPC guide idioms):

* Mutation happens on adjacency *sets* (cheap O(1) updates, exactly what
  the RIN widget needs when the cut-off slider moves), while all analytics
  run on an immutable CSR snapshot produced by :meth:`Graph.csr`.
* The CSR snapshot is cached and invalidated on mutation, so repeated
  analytics on an unchanged graph pay the conversion cost once.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .csr import CSRGraph

__all__ = ["Graph"]


class Graph:
    """An undirected or directed graph with contiguous integer node ids.

    Parameters
    ----------
    n:
        Initial number of nodes (ids ``0..n-1``).
    weighted:
        Store a float weight per edge (defaults to 1.0 per edge).
    directed:
        Interpret edges as ordered pairs.

    Examples
    --------
    >>> g = Graph(3)
    >>> g.add_edge(0, 1)
    >>> g.add_edge(1, 2)
    >>> g.number_of_edges()
    2
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_adj", "_in_adj", "_weighted", "_directed", "_m", "_csr_cache")

    def __init__(self, n: int = 0, *, weighted: bool = False, directed: bool = False):
        if n < 0:
            raise ValueError(f"node count must be non-negative, got {n}")
        self._adj: list[dict[int, float]] = [dict() for _ in range(n)]
        # For directed graphs we also maintain in-neighbours so that
        # reverse traversals (e.g. PageRank pulls) stay O(deg).
        self._in_adj: list[dict[int, float]] | None = (
            [dict() for _ in range(n)] if directed else None
        )
        self._weighted = bool(weighted)
        self._directed = bool(directed)
        self._m = 0
        self._csr_cache: CSRGraph | None = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def weighted(self) -> bool:
        """Whether edges carry explicit weights."""
        return self._weighted

    @property
    def directed(self) -> bool:
        """Whether edges are ordered pairs."""
        return self._directed

    def number_of_nodes(self) -> int:
        """Return the number of nodes."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """Return the number of edges (each undirected edge counted once)."""
        return self._m

    # NetworKit-style aliases -------------------------------------------------
    def numberOfNodes(self) -> int:  # noqa: N802 - NetworKit API compatibility
        """Alias of :meth:`number_of_nodes` (NetworKit naming)."""
        return self.number_of_nodes()

    def numberOfEdges(self) -> int:  # noqa: N802 - NetworKit API compatibility
        """Alias of :meth:`number_of_edges` (NetworKit naming)."""
        return self.number_of_edges()

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self._directed else "undirected"
        w = "weighted" if self._weighted else "unweighted"
        return f"Graph(n={len(self._adj)}, m={self._m}, {kind}, {w})"

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self) -> int:
        """Append one node and return its id."""
        self._adj.append(dict())
        if self._in_adj is not None:
            self._in_adj.append(dict())
        self._invalidate()
        return len(self._adj) - 1

    def add_nodes(self, count: int) -> None:
        """Append ``count`` nodes."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._adj.extend(dict() for _ in range(count))
        if self._in_adj is not None:
            self._in_adj.extend(dict() for _ in range(count))
        self._invalidate()

    def _check_node(self, u: int) -> None:
        if not 0 <= u < len(self._adj):
            raise IndexError(f"node {u} out of range [0, {len(self._adj)})")

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Insert edge ``(u, v)``; updating the weight if it already exists.

        Self-loops are rejected: RINs (and all algorithms in this package)
        operate on simple graphs.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError(f"self-loop ({u},{u}) not supported")
        w = float(weight) if self._weighted else 1.0
        fresh = v not in self._adj[u]
        self._adj[u][v] = w
        if self._directed:
            assert self._in_adj is not None
            self._in_adj[v][u] = w
        else:
            self._adj[v][u] = w
        if fresh:
            self._m += 1
        self._invalidate()

    def add_edges(self, edges: Iterable[tuple[int, int]] | np.ndarray) -> None:
        """Bulk-insert unweighted edges."""
        for u, v in edges:
            self.add_edge(int(u), int(v))

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)``; raises ``KeyError`` if absent."""
        self._check_node(u)
        self._check_node(v)
        if v not in self._adj[u]:
            raise KeyError(f"edge ({u},{v}) not in graph")
        del self._adj[u][v]
        if self._directed:
            assert self._in_adj is not None
            del self._in_adj[v][u]
        else:
            del self._adj[v][u]
        self._m -= 1
        self._invalidate()

    def update_edges(
        self,
        add: Iterable[tuple[int, int]] = (),
        remove: Iterable[tuple[int, int]] = (),
    ) -> tuple[int, int]:
        """Apply a batched edge diff; returns ``(n_added, n_removed)``.

        This is the primitive behind the RIN widget's cut-off/frame switch:
        the new edge set is expressed as a diff against the current one so
        only the changed entries are touched.
        """
        added = removed = 0
        for u, v in remove:
            u, v = int(u), int(v)
            if 0 <= u < len(self._adj) and v in self._adj[u]:
                self.remove_edge(u, v)
                removed += 1
        for u, v in add:
            u, v = int(u), int(v)
            if not self.has_edge(u, v):
                self.add_edge(u, v)
                added += 1
        return added, removed

    def set_weight(self, u: int, v: int, weight: float) -> None:
        """Set the weight of an existing edge."""
        if not self._weighted:
            raise ValueError("graph is unweighted; construct with weighted=True")
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u},{v}) not in graph")
        self._adj[u][v] = float(weight)
        if self._directed:
            assert self._in_adj is not None
            self._in_adj[v][u] = float(weight)
        else:
            self._adj[v][u] = float(weight)
        self._invalidate()

    def _invalidate(self) -> None:
        self._csr_cache = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """Return True if the edge ``(u, v)`` exists."""
        if not (0 <= u < len(self._adj)):
            return False
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        """Return the weight of edge ``(u, v)``."""
        self._check_node(u)
        if v not in self._adj[u]:
            raise KeyError(f"edge ({u},{v}) not in graph")
        return self._adj[u][v]

    def degree(self, u: int) -> int:
        """Out-degree of ``u`` (plain degree for undirected graphs)."""
        self._check_node(u)
        return len(self._adj[u])

    def in_degree(self, u: int) -> int:
        """In-degree of ``u`` (equals :meth:`degree` when undirected)."""
        self._check_node(u)
        if not self._directed:
            return len(self._adj[u])
        assert self._in_adj is not None
        return len(self._in_adj[u])

    def weighted_degree(self, u: int) -> float:
        """Sum of incident edge weights at ``u``."""
        self._check_node(u)
        return float(sum(self._adj[u].values()))

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate over (out-)neighbours of ``u``."""
        self._check_node(u)
        return iter(self._adj[u])

    def in_neighbors(self, u: int) -> Iterator[int]:
        """Iterate over in-neighbours of ``u``."""
        self._check_node(u)
        if not self._directed:
            return iter(self._adj[u])
        assert self._in_adj is not None
        return iter(self._in_adj[u])

    def iter_nodes(self) -> Iterator[int]:
        """Iterate over node ids."""
        return iter(range(len(self._adj)))

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges; undirected edges are yielded once as (u<v)."""
        if self._directed:
            for u, nbrs in enumerate(self._adj):
                for v in nbrs:
                    yield u, v
        else:
            for u, nbrs in enumerate(self._adj):
                for v in nbrs:
                    if u < v:
                        yield u, v

    def iter_weighted_edges(self) -> Iterator[tuple[int, int, float]]:
        """Like :meth:`iter_edges` but includes weights."""
        if self._directed:
            for u, nbrs in enumerate(self._adj):
                for v, w in nbrs.items():
                    yield u, v, w
        else:
            for u, nbrs in enumerate(self._adj):
                for v, w in nbrs.items():
                    if u < v:
                        yield u, v, w

    def edge_set(self) -> set[tuple[int, int]]:
        """Materialize the edge set (canonicalized (u<v) when undirected)."""
        return set(self.iter_edges())

    def degrees(self) -> np.ndarray:
        """Vector of (out-)degrees."""
        return np.fromiter(
            (len(nbrs) for nbrs in self._adj), dtype=np.int64, count=len(self._adj)
        )

    def total_edge_weight(self) -> float:
        """Sum of all edge weights (undirected edges counted once)."""
        total = sum(sum(nbrs.values()) for nbrs in self._adj)
        return float(total if self._directed else total / 2.0)

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def csr(self) -> CSRGraph:
        """Return (and cache) a CSR snapshot of the current adjacency."""
        if self._csr_cache is None:
            self._csr_cache = CSRGraph.from_adjacency(
                self._adj, directed=self._directed
            )
        return self._csr_cache

    def edge_array(self) -> np.ndarray:
        """Return an ``(m, 2)`` int array of edges (canonical order)."""
        edges = list(self.iter_edges())
        if not edges:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(edges, dtype=np.int64)

    def copy(self) -> "Graph":
        """Deep copy of the graph."""
        g = Graph(len(self._adj), weighted=self._weighted, directed=self._directed)
        g._adj = [dict(nbrs) for nbrs in self._adj]
        if self._in_adj is not None:
            g._in_adj = [dict(nbrs) for nbrs in self._in_adj]
        g._m = self._m
        return g

    def subgraph(self, nodes: Sequence[int]) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns the subgraph (with nodes relabelled ``0..k-1`` following the
        order of ``nodes``) and the array mapping new ids to original ids.
        """
        nodes = list(dict.fromkeys(int(u) for u in nodes))  # dedupe, keep order
        for u in nodes:
            self._check_node(u)
        remap = {u: i for i, u in enumerate(nodes)}
        sub = Graph(len(nodes), weighted=self._weighted, directed=self._directed)
        for u in nodes:
            for v, w in self._adj[u].items():
                if v in remap and (self._directed or remap[u] < remap[v]):
                    sub.add_edge(remap[u], remap[v], w)
        return sub, np.asarray(nodes, dtype=np.int64)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        *,
        weighted: bool = False,
        directed: bool = False,
    ) -> "Graph":
        """Build a graph from an iterable of (u, v) pairs."""
        g = cls(n, weighted=weighted, directed=directed)
        g.add_edges(edges)
        return g

    @classmethod
    def from_weighted_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int, float]],
        *,
        directed: bool = False,
    ) -> "Graph":
        """Build a weighted graph from (u, v, w) triples."""
        g = cls(n, weighted=True, directed=directed)
        for u, v, w in edges:
            g.add_edge(int(u), int(v), float(w))
        return g
