"""Per-frame RIN feature time series (paper §V: explore "how the RIN
topology and corresponding network measures change over time").

These are the arrays a downstream ML pipeline (paper §VII) would consume:
for every trajectory frame, the node-score vector of a measure, plus
topology summaries (edge count, components, mean degree).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphkit.components import connected_components
from ..md.trajectory import Trajectory
from .construction import RINBuilder
from .criteria import DistanceCriterion
from .measures import get_measure

__all__ = ["MeasureSeries", "measure_over_trajectory", "topology_over_trajectory"]


@dataclass(frozen=True)
class MeasureSeries:
    """Scores of one measure across frames: ``values[f, u]``."""

    measure: str
    cutoff: float
    values: np.ndarray  # (n_frames, n_residues)

    @property
    def n_frames(self) -> int:
        """Number of frames covered."""
        return self.values.shape[0]

    def per_residue_mean(self) -> np.ndarray:
        """Time-averaged score per residue."""
        return self.values.mean(axis=0)

    def per_residue_std(self) -> np.ndarray:
        """Temporal variability per residue."""
        return self.values.std(axis=0)

    def most_variable(self, k: int = 5) -> np.ndarray:
        """Residues whose score fluctuates the most."""
        return np.argsort(-self.per_residue_std())[:k].astype(np.int64)


def measure_over_trajectory(
    trajectory: Trajectory,
    measure: str,
    cutoff: float,
    *,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
    frames: np.ndarray | None = None,
) -> MeasureSeries:
    """Compute one measure on the RIN of every (selected) frame."""
    m = get_measure(measure)
    builder = RINBuilder(trajectory, criterion=criterion)
    frame_ids = (
        np.arange(trajectory.n_frames) if frames is None else np.asarray(frames)
    )
    n_res = trajectory.topology.n_residues
    values = np.empty((len(frame_ids), n_res))
    for row, f in enumerate(frame_ids):
        values[row] = m(builder.build(int(f), cutoff))
    return MeasureSeries(measure=measure, cutoff=cutoff, values=values)


def topology_over_trajectory(
    trajectory: Trajectory,
    cutoff: float,
    *,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
) -> dict[str, np.ndarray]:
    """Per-frame topology summaries: edges, components, mean degree.

    The §IV observation "changes in the distance cut-off can drastically
    alter the RIN topology, e.g. influencing the number of hubs and
    connected components" made quantitative along the time axis.
    """
    builder = RINBuilder(trajectory, criterion=criterion)
    frames = trajectory.n_frames
    edges = np.empty(frames, dtype=np.int64)
    comps = np.empty(frames, dtype=np.int64)
    mean_degree = np.empty(frames)
    for f in range(frames):
        g = builder.build(f, cutoff)
        edges[f] = g.number_of_edges()
        comps[f], _ = connected_components(g)
        degs = g.degrees()
        mean_degree[f] = degs.mean() if len(degs) else 0.0
    return {"edges": edges, "components": comps, "mean_degree": mean_degree}
