"""Per-frame RIN feature time series (paper §V: explore "how the RIN
topology and corresponding network measures change over time").

These are the arrays a downstream ML pipeline (paper §VII) would consume:
for every trajectory frame, the node-score vector of a measure, plus
topology summaries (edge count, components, mean degree).

Both series builders accept ``workers=`` / ``executor=``: frames are the
shard axis, the trajectory coordinate block is placed in shared memory
once, and each pool worker computes its contiguous frame block against a
zero-copy view (see ``docs/ARCHITECTURE.md``, *The sharded scanning
engine*). ``workers=0`` (default) runs the same shard functions serially
in-process — results are bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphkit.csr import CSRGraph, CSRSnapshotBuffer, pack_edge_keys
from ..graphkit.incremental import IncrementalMeasures
from ..graphkit.parallel import ShardedExecutor
from ..md.distances import contact_pairs, residue_distance_matrix
from ..md.trajectory import Trajectory
from .criteria import DistanceCriterion
from .measures import get_measure
from .scanning import fan_out_frames

__all__ = ["MeasureSeries", "measure_over_trajectory", "topology_over_trajectory"]


@dataclass(frozen=True)
class MeasureSeries:
    """Scores of one measure across frames: ``values[f, u]``."""

    measure: str
    cutoff: float
    values: np.ndarray  # (n_frames, n_residues)

    @property
    def n_frames(self) -> int:
        """Number of frames covered."""
        return self.values.shape[0]

    def per_residue_mean(self) -> np.ndarray:
        """Time-averaged score per residue."""
        return self.values.mean(axis=0)

    def per_residue_std(self) -> np.ndarray:
        """Temporal variability per residue."""
        return self.values.std(axis=0)

    def most_variable(self, k: int = 5) -> np.ndarray:
        """Residues whose score fluctuates the most."""
        return np.argsort(-self.per_residue_std())[:k].astype(np.int64)


def _frame_csr(
    topology, coords: np.ndarray, cutoff: float, criterion: str
) -> CSRGraph:
    """The RIN CSR snapshot of one frame (worker-side construction)."""
    dm = residue_distance_matrix(topology, coords, criterion)
    pairs = contact_pairs(dm, cutoff)
    return CSRGraph.from_unique_edge_array(topology.n_residues, pairs)


def _measure_shard(payload: tuple, arrays: dict) -> np.ndarray:
    """Shard: one measure's score rows for a contiguous frame block."""
    topology, criterion, cutoff, measure_name, frame_ids = payload
    m = get_measure(measure_name)
    coords = arrays["coords"]
    out = np.empty((len(frame_ids), topology.n_residues))
    for row, f in enumerate(frame_ids):
        out[row] = m(_frame_csr(topology, coords[int(f)], cutoff, criterion))
    return out


def _topology_shard(payload: tuple, arrays: dict) -> tuple[np.ndarray, ...]:
    """Shard: per-frame topology summaries for a contiguous frame block.

    Consecutive frames differ by thermal motion, so the walk expresses
    each frame as a :class:`~repro.graphkit.csr.CSRDelta` against the
    previous one and advances a delta-aware measure engine
    (:class:`~repro.graphkit.incremental.IncrementalMeasures`) across the
    block: components and degrees fold the diff, core numbers repair
    along it (or full-peel when a frame jump is large). Every summary is
    an exact function of the frame's edge set, so shard boundaries never
    show in the series.
    """
    topology, criterion, cutoff, frame_ids = payload
    coords = arrays["coords"]
    n_res = topology.n_residues
    k = len(frame_ids)
    edges = np.empty(k, dtype=np.int64)
    comps = np.empty(k, dtype=np.int64)
    mean_degree = np.empty(k)
    max_coreness = np.empty(k, dtype=np.int64)
    snapshots = CSRSnapshotBuffer(n_res)
    engine = IncrementalMeasures(n_res)
    for row, f in enumerate(frame_ids):
        dm = residue_distance_matrix(topology, coords[int(f)], criterion)
        delta = snapshots.delta_to(pack_edge_keys(n_res, contact_pairs(dm, cutoff)))
        csr = snapshots.apply(delta)
        engine.apply(delta, csr)
        edges[row] = csr.number_of_edges()
        comps[row] = engine.component_count
        degs = engine.degrees()
        mean_degree[row] = degs.mean() if len(degs) else 0.0
        max_coreness[row] = engine.max_core_number()
    return edges, comps, mean_degree, max_coreness


def measure_over_trajectory(
    trajectory: Trajectory,
    measure: str,
    cutoff: float,
    *,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
    frames: np.ndarray | None = None,
    workers: int | None = 0,
    executor: Any | None = None,
) -> MeasureSeries:
    """Compute one measure on the RIN of every (selected) frame.

    ``workers`` fans the frame loop out across the process pool
    (``0`` = serial, ``None`` = one worker per core); pass a live
    ``executor`` to amortize pool start-up across series.
    """
    get_measure(measure)  # validates the name before any fan-out
    crit = DistanceCriterion.parse(criterion)
    frame_ids = (
        np.arange(trajectory.n_frames, dtype=np.int64)
        if frames is None
        else np.asarray(frames, dtype=np.int64)
    )
    for f in frame_ids:
        trajectory.frame(int(f))  # validates the index
    parts = fan_out_frames(
        trajectory,
        frame_ids,
        _measure_shard,
        (crit.value, float(cutoff), measure),
        workers=workers,
        executor=executor,
    )
    return MeasureSeries(
        measure=measure, cutoff=cutoff, values=np.concatenate(parts)
    )


def topology_over_trajectory(
    trajectory: Trajectory,
    cutoff: float,
    *,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
    workers: int | None = 0,
    executor: Any | None = None,
) -> dict[str, np.ndarray]:
    """Per-frame topology summaries: edges, components, mean degree,
    max coreness.

    The §IV observation "changes in the distance cut-off can drastically
    alter the RIN topology, e.g. influencing the number of hubs and
    connected components" made quantitative along the time axis. Each
    shard walks its frame block as a chain of edge deltas through the
    incremental measure engine rather than recomputing every summary per
    frame. ``workers`` / ``executor`` fan the frame loop across the
    process pool exactly as in :func:`measure_over_trajectory`.
    """
    if cutoff <= 0:
        raise ValueError(f"cutoff must be positive, got {cutoff}")
    crit = DistanceCriterion.parse(criterion)
    frame_ids = np.arange(trajectory.n_frames, dtype=np.int64)
    parts = fan_out_frames(
        trajectory,
        frame_ids,
        _topology_shard,
        (crit.value, float(cutoff)),
        workers=workers,
        executor=executor,
    )
    return {
        "edges": np.concatenate([p[0] for p in parts]),
        "components": np.concatenate([p[1] for p in parts]),
        "mean_degree": np.concatenate([p[2] for p in parts]),
        "max_coreness": np.concatenate([p[3] for p in parts]),
    }
