"""The widget's graph-measure registry (paper Fig. 6 measure switch).

The seven measures of Figure 6, selectable by name from the GUI's
"Graph Measure" slider:

* Betweenness Centrality, Closeness Centrality, Degree Centrality,
  Eigenvector Centrality, Katz Centrality (node scores in [0, ∞));
* PLM Community Detection, PLP Community Detection (block labels);

plus two weighted extras (Weighted Betweenness/Closeness Centrality)
that treat edge weights as distances and run on the batched
delta-stepping kernels. Every measure routes through the batched kernel
layer (``docs/KERNELS.md``), so a measure event from the interactive
pipeline costs block-level matrix sweeps, never per-source Python loops.

Every measure maps a graph — the mutable :class:`~repro.graphkit.graph.Graph`
or an immutable :class:`~repro.graphkit.csr.CSRGraph` snapshot (what the
interactive pipeline passes) — to an ``(n,)`` float array; community
labels are returned as floats so the widget's color mapping code is
measure-agnostic. Custom measures register via :func:`register_measure` —
the paper's "easily be customized through simple modifications of Python
code".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..graphkit import Graph
from ..graphkit.centrality import (
    Betweenness,
    Closeness,
    DegreeCentrality,
    EigenvectorCentrality,
    KatzCentrality,
)
from ..graphkit.community import PLM, PLP

__all__ = [
    "GraphMeasure",
    "MEASURES",
    "PAPER_MEASURES",
    "get_measure",
    "register_measure",
    "measure_names",
]


@dataclass(frozen=True)
class GraphMeasure:
    """A named node-score function over RIN graphs.

    Attributes
    ----------
    name:
        Display name (matches the paper's figure legends).
    compute:
        ``Graph | CSRGraph -> (n,) float`` score function.
    kind:
        ``'centrality'`` (continuous) or ``'community'`` (categorical).
    """

    name: str
    compute: Callable[[Graph], np.ndarray]
    kind: str = "centrality"

    def __call__(self, g: Graph) -> np.ndarray:
        scores = np.asarray(self.compute(g), dtype=np.float64)
        if scores.shape != (g.number_of_nodes(),):
            raise AssertionError(
                f"measure {self.name!r} returned shape {scores.shape} for a "
                f"{g.number_of_nodes()}-node graph"
            )
        return scores


def _betweenness(g: Graph) -> np.ndarray:
    return Betweenness(g, normalized=True).run().scores_array()


def _closeness(g: Graph) -> np.ndarray:
    return Closeness(g, normalized=True).run().scores_array()


def _weighted_betweenness(g: Graph) -> np.ndarray:
    return Betweenness(g, normalized=True, weighted=True).run().scores_array()


def _sampled_weighted_betweenness(g: Graph) -> np.ndarray:
    # Seeded pivot estimator (impl="sampled"): ~n/8 pivots keep slider
    # ticks on large weighted RINs sub-exact-cost while the fixed seed
    # keeps repeated measure switches deterministic frame to frame.
    n = g.number_of_nodes() if isinstance(g, Graph) else g.n
    nsamples = max(16, n // 8)
    return (
        Betweenness(
            g, normalized=True, weighted=True, impl="sampled",
            nsamples=nsamples, seed=42,
        )
        .run()
        .scores_array()
    )


def _weighted_closeness(g: Graph) -> np.ndarray:
    return Closeness(g, normalized=True, weighted=True).run().scores_array()


def _degree(g: Graph) -> np.ndarray:
    return DegreeCentrality(g, normalized=True).run().scores_array()


def _eigenvector(g: Graph) -> np.ndarray:
    return EigenvectorCentrality(g).run().scores_array()


def _katz(g: Graph) -> np.ndarray:
    return KatzCentrality(g).run().scores_array()


def _plm(g: Graph) -> np.ndarray:
    return PLM(g, seed=42).run().get_partition().labels().astype(np.float64)


def _plp(g: Graph) -> np.ndarray:
    return PLP(g, seed=42).run().get_partition().labels().astype(np.float64)


#: The measure set of Figure 6 (a/b), in the paper's legend order.
PAPER_MEASURES: tuple[str, ...] = (
    "Betweenness Centrality",
    "Closeness Centrality",
    "Degree Centrality",
    "Eigenvector Centrality",
    "Katz Centrality",
    "PLM Community Detection",
    "PLP Community Detection",
)

MEASURES: dict[str, GraphMeasure] = {
    "Betweenness Centrality": GraphMeasure("Betweenness Centrality", _betweenness),
    "Closeness Centrality": GraphMeasure("Closeness Centrality", _closeness),
    "Degree Centrality": GraphMeasure("Degree Centrality", _degree),
    "Eigenvector Centrality": GraphMeasure("Eigenvector Centrality", _eigenvector),
    "Katz Centrality": GraphMeasure("Katz Centrality", _katz),
    "PLM Community Detection": GraphMeasure(
        "PLM Community Detection", _plm, kind="community"
    ),
    "PLP Community Detection": GraphMeasure(
        "PLP Community Detection", _plp, kind="community"
    ),
    # Weighted extras (not in Figure 6): edge weights read as distances,
    # computed by the batched delta-stepping kernels. On the unit-weight
    # RINs the paper builds they coincide with the hop measures; weighted
    # RIN variants feed real contact distances through the same entries.
    "Weighted Betweenness Centrality": GraphMeasure(
        "Weighted Betweenness Centrality", _weighted_betweenness
    ),
    "Sampled Weighted Betweenness Centrality": GraphMeasure(
        "Sampled Weighted Betweenness Centrality",
        _sampled_weighted_betweenness,
    ),
    "Weighted Closeness Centrality": GraphMeasure(
        "Weighted Closeness Centrality", _weighted_closeness
    ),
}


def measure_names() -> list[str]:
    """All registered measure names (paper measures first)."""
    paper = [n for n in PAPER_MEASURES if n in MEASURES]
    extra = [n for n in MEASURES if n not in PAPER_MEASURES]
    return paper + extra


def get_measure(name: str) -> GraphMeasure:
    """Look up a measure by display name."""
    try:
        return MEASURES[name]
    except KeyError:
        raise KeyError(
            f"unknown measure {name!r}; registered: {measure_names()}"
        ) from None


def register_measure(
    name: str,
    compute: Callable[[Graph], np.ndarray],
    *,
    kind: str = "centrality",
    overwrite: bool = False,
) -> GraphMeasure:
    """Register a user-defined measure for the widget.

    Raises ``ValueError`` if the name exists and ``overwrite`` is False.
    """
    if kind not in ("centrality", "community"):
        raise ValueError(f"kind must be 'centrality' or 'community', got {kind!r}")
    if name in MEASURES and not overwrite:
        raise ValueError(f"measure {name!r} already registered")
    measure = GraphMeasure(name, compute, kind=kind)
    MEASURES[name] = measure
    return measure
