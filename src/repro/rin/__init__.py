"""repro.rin — residue interaction network construction & analysis.

The glue between the MD substrate and the network-analysis substrate:
build RINs from structure frames (:func:`build_rin`), update them
incrementally as the widget's sliders move (:class:`DynamicRIN`), compute
the widget's seven graph measures (:mod:`~repro.rin.measures`) and run the
domain analyses of paper §IV (:mod:`~repro.rin.analysis`).
"""

from .analysis import (
    StructureOverlap,
    community_structure_overlap,
    hubs,
    top_central_residues,
)
from .construction import RINBuilder, build_rin
from .criteria import DEFAULT_CUTOFFS, DistanceCriterion
from .dynamic import DynamicRIN, EdgeUpdate
from .measures import (
    MEASURES,
    PAPER_MEASURES,
    GraphMeasure,
    get_measure,
    measure_names,
    register_measure,
)
from .scanning import (
    LAYOUT_CHAIN_LENGTH,
    CutoffScan,
    TrajectoryLayoutScan,
    TrajectoryScan,
    criterion_comparison,
    cutoff_scan,
    trajectory_cutoff_scan,
    trajectory_layout_scan,
)
from .timeseries import (
    MeasureSeries,
    measure_over_trajectory,
    topology_over_trajectory,
)

__all__ = [
    "build_rin",
    "RINBuilder",
    "DynamicRIN",
    "EdgeUpdate",
    "DistanceCriterion",
    "DEFAULT_CUTOFFS",
    "GraphMeasure",
    "MEASURES",
    "PAPER_MEASURES",
    "get_measure",
    "measure_names",
    "register_measure",
    "hubs",
    "top_central_residues",
    "community_structure_overlap",
    "StructureOverlap",
    "MeasureSeries",
    "measure_over_trajectory",
    "topology_over_trajectory",
    "CutoffScan",
    "TrajectoryScan",
    "TrajectoryLayoutScan",
    "LAYOUT_CHAIN_LENGTH",
    "cutoff_scan",
    "trajectory_cutoff_scan",
    "trajectory_layout_scan",
    "criterion_comparison",
]
