"""Distance criteria for protein→RIN translation (paper §IV).

The paper: "the residue-residue distance can be determined in different
ways, such as the distance between the C-α atoms of each residue, the
centers of mass of the residues, or the distance between whichever two
atoms are closest to each other" — with cut-offs usually between 4 and
8.5 Å depending on criterion and question.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["DistanceCriterion", "DEFAULT_CUTOFFS"]


class DistanceCriterion(Enum):
    """How residue-residue distance is measured."""

    CA = "ca"
    CENTER_OF_MASS = "com"
    MINIMUM = "min"

    @classmethod
    def parse(cls, value: "DistanceCriterion | str") -> "DistanceCriterion":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            valid = [m.value for m in cls]
            raise ValueError(
                f"unknown distance criterion {value!r}; use one of {valid}"
            ) from None


#: Literature-typical cut-off ranges (Å) per criterion (paper §IV cites
#: 4 Å – 8.5 Å depending on the distance definition).
DEFAULT_CUTOFFS: dict[DistanceCriterion, tuple[float, float]] = {
    DistanceCriterion.CA: (6.0, 8.5),
    DistanceCriterion.CENTER_OF_MASS: (6.0, 8.5),
    DistanceCriterion.MINIMUM: (4.0, 5.0),
}
