"""RIN construction: trajectory frame + criterion + cut-off → Graph.

Nodes are residues, an edge joins residues whose distance (under the
selected criterion) is within the cut-off — the unweighted undirected RIN
of paper §IV.
"""

from __future__ import annotations

import numpy as np

from ..graphkit import Graph
from ..md.distances import contact_pairs, residue_distance_matrix
from ..md.topology import Topology
from ..md.trajectory import Trajectory
from .criteria import DistanceCriterion

__all__ = ["build_rin", "RINBuilder"]


def build_rin(
    topology: Topology,
    frame: np.ndarray,
    cutoff: float,
    *,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
    min_sequence_separation: int = 1,
) -> Graph:
    """Build the RIN of one structure frame.

    Parameters
    ----------
    topology / frame:
        The protein and one ``(n_atoms, 3)`` coordinate frame.
    cutoff:
        Contact cut-off in Å.
    criterion:
        Distance definition (:class:`DistanceCriterion` or its string).
    min_sequence_separation:
        Minimum |i - j| for a contact to become an edge (1 keeps chain
        neighbours).
    """
    crit = DistanceCriterion.parse(criterion)
    dm = residue_distance_matrix(topology, frame, crit.value)
    pairs = contact_pairs(
        dm, cutoff, min_sequence_separation=min_sequence_separation
    )
    return Graph.from_edges(topology.n_residues, pairs)


class RINBuilder:
    """Reusable builder bound to a trajectory.

    Caches residue-distance matrices per (frame, criterion) so repeated
    cut-off sweeps on the same frame — exactly what the widget's cut-off
    slider generates — cost one thresholding pass instead of a full
    distance computation.
    """

    def __init__(
        self,
        trajectory: Trajectory,
        *,
        criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
        min_sequence_separation: int = 1,
        cache_size: int = 8,
    ):
        self._trajectory = trajectory
        self._criterion = DistanceCriterion.parse(criterion)
        self._min_sep = int(min_sequence_separation)
        self._cache: dict[int, np.ndarray] = {}
        self._cache_order: list[int] = []
        self._cache_size = max(1, cache_size)
        # Shared upper-triangle index pair (one allocation per topology)
        # and per-frame condensed distance vectors: a cut-off/frame switch
        # then thresholds a flat array instead of re-gathering the matrix.
        self._triu: tuple[np.ndarray, np.ndarray] | None = None
        self._condensed: dict[int, np.ndarray] = {}

    @property
    def trajectory(self) -> Trajectory:
        """The bound trajectory."""
        return self._trajectory

    @property
    def criterion(self) -> DistanceCriterion:
        """The active distance criterion."""
        return self._criterion

    @property
    def min_sequence_separation(self) -> int:
        """Minimum |i - j| for a contact to become an edge."""
        return self._min_sep

    def distance_matrix(self, frame: int) -> np.ndarray:
        """Residue-distance matrix of ``frame`` (LRU-cached)."""
        if frame in self._cache:
            return self._cache[frame]
        dm = residue_distance_matrix(
            self._trajectory.topology,
            self._trajectory.frame(frame),
            self._criterion.value,
        )
        self._cache[frame] = dm
        self._cache_order.append(frame)
        if len(self._cache_order) > self._cache_size:
            evicted = self._cache_order.pop(0)
            self._cache.pop(evicted, None)
            self._condensed.pop(evicted, None)
        return dm

    def _condensed_distances(self, frame: int) -> np.ndarray:
        """Upper-triangle distance vector of ``frame`` (cached per frame)."""
        cond = self._condensed.get(frame)
        if cond is None:
            dm = self.distance_matrix(frame)
            if self._triu is None:
                self._triu = np.triu_indices(dm.shape[0], k=max(1, self._min_sep))
            cond = dm[self._triu]
            self._condensed[frame] = cond
        return cond

    def edges(self, frame: int, cutoff: float) -> np.ndarray:
        """Contact pairs of ``frame`` at ``cutoff`` (``(m, 2)`` array)."""
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        d = self._condensed_distances(frame)
        assert self._triu is not None
        mask = d <= cutoff
        iu, iv = self._triu
        return np.column_stack([iu[mask], iv[mask]]).astype(np.int64)

    def build(self, frame: int, cutoff: float) -> Graph:
        """Materialize the RIN graph of ``frame`` at ``cutoff``."""
        return Graph.from_edges(
            self._trajectory.topology.n_residues, self.edges(frame, cutoff)
        )

    def edge_counts(self, cutoffs: np.ndarray, frame: int = 0) -> np.ndarray:
        """Edge count per cut-off — the topology-vs-cutoff profile of §IV."""
        d = np.sort(self._condensed_distances(frame))
        return np.searchsorted(d, np.asarray(cutoffs), side="right")
