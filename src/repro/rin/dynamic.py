"""DynamicRIN — incremental RIN updates for the interactive widget.

The paper's widget never rebuilds the network from scratch when a slider
moves: "Both routines consist of adding/removing edges and recomputing the
Maxent-Stress layout phase" (§V-B). :class:`DynamicRIN` is that edge-update
routine: it owns the residue node set and applies set diffs on cut-off or
frame switches, reporting how many edges changed.

Engine split (the twin-engine convention, see ``docs/ARCHITECTURE.md``):

* ``impl="vectorized"`` (default) keeps the edge set as sorted packed
  int64 keys and applies every diff to a double-buffered
  :class:`~repro.graphkit.csr.CSRSnapshotBuffer` — the published
  :attr:`csr` snapshot is rebuilt by a compiled merge
  (:meth:`~repro.graphkit.csr.CSRDelta.apply`), with **no per-edge Python
  dict mutation on the fast path**. The mutable dict-of-dicts
  :class:`~repro.graphkit.graph.Graph` survives as a *lazily synchronized
  view*: the first :attr:`graph` access after one or more updates replays
  the accumulated net diff, off the hot path.
* ``impl="reference"`` keeps the naive path: Python set algebra over
  tuple pairs and per-edge dict mutation, for differential testing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..graphkit import Graph
from ..graphkit.csr import CSRDelta, CSRGraph, CSRSnapshotBuffer, pack_edge_keys
from ..graphkit.incremental import IncrementalMeasures, full_measures
from ..md.trajectory import Trajectory
from .construction import RINBuilder
from .criteria import DistanceCriterion

__all__ = ["DynamicRIN", "EdgeUpdate"]

_MEASURE_IMPLS = ("incremental", "full")


@dataclass(frozen=True)
class EdgeUpdate:
    """Result of one incremental update."""

    added: int
    removed: int

    @property
    def total(self) -> int:
        """Number of touched edges."""
        return self.added + self.removed


class DynamicRIN:
    """A RIN that follows the widget's (frame, cutoff) state.

    The edge diff between the current and target contact sets is computed
    on packed int64 edge keys (``u * n + v``) with sorted set differences
    and applied to a double-buffered CSR snapshot
    (``impl="vectorized"``, default) — Python-level set algebra over tuple
    pairs remains available as ``impl="reference"`` for differential
    testing. Only the (typically small) diff is ever materialized.

    Examples
    --------
    >>> from repro.md import proteins, generate_trajectory
    >>> topo, native = proteins.build("2JOF")
    >>> traj = generate_trajectory(topo, native, 10, seed=1)
    >>> rin = DynamicRIN(traj, frame=0, cutoff=4.5)
    >>> update = rin.set_cutoff(6.0)   # adds edges only
    >>> update.removed
    0
    """

    def __init__(
        self,
        trajectory: Trajectory,
        *,
        frame: int = 0,
        cutoff: float = 4.5,
        criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
        min_sequence_separation: int = 1,
        impl: str = "vectorized",
    ):
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        if impl not in ("vectorized", "reference"):
            raise ValueError(f"impl must be 'vectorized' or 'reference', got {impl!r}")
        self._builder = RINBuilder(
            trajectory,
            criterion=criterion,
            min_sequence_separation=min_sequence_separation,
        )
        self._impl = impl
        self._frame = int(frame)
        self._cutoff = float(cutoff)
        trajectory.frame(self._frame)  # validates the index
        self._n = trajectory.topology.n_residues
        self._edge_keys = pack_edge_keys(
            self._n, self._builder.edges(self._frame, self._cutoff)
        )
        self._snapshots = CSRSnapshotBuffer(self._n, self._edge_keys)
        self._graph = Graph.from_edges(
            self._n, self._snapshots.current.edge_array()
        )
        # Keys the dict-graph view currently reflects (vectorized engine
        # defers replay until someone asks for the mutable graph).
        self._synced_keys = self._edge_keys
        # The maintained-measure engine and the keys it reflects; both
        # are lazy (created/advanced on first read after updates), so a
        # burst of slider moves costs one combined delta apply.
        self._measures: IncrementalMeasures | None = None
        self._measures_keys: np.ndarray | None = None
        # Guards every read/advance of the lazily-synced views (the dict
        # graph and the measure engine) against the snapshot/key state a
        # worker thread mutates: a reader mid-delta sees either the old
        # or the new state, never a torn mix, and two concurrent syncs
        # can never replay the same diff twice.
        self._state_lock = threading.RLock()

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The mutable dict-of-dicts RIN view (synchronized on access).

        Object identity is stable across updates: the widget may keep a
        handle. Under the vectorized engine the view is synchronized
        lazily — accessing it after slider moves replays the accumulated
        net edge diff (the naive per-edge path, deliberately off the
        interactive fast path; use :attr:`csr` there). Synchronization
        runs under the state lock, so reading the view while a worker
        thread applies deltas is safe.
        """
        with self._state_lock:
            self._sync_graph()
            return self._graph

    @property
    def csr(self) -> CSRGraph:
        """The current immutable CSR snapshot (the analytics fast path)."""
        return self._snapshots.current

    @property
    def snapshots(self) -> CSRSnapshotBuffer:
        """The double-buffered snapshot store behind :attr:`csr`."""
        return self._snapshots

    @property
    def measures(self) -> IncrementalMeasures:
        """The maintained measure engine, synced to the current state.

        Degree, weighted degree, core numbers and component labels are
        maintained *incrementally* across slider moves: reading after a
        burst of updates applies one net delta (bounded k-core repair,
        component re-scan/union) instead of recomputing per snapshot.
        Never advanced on the slider fast path — only on access.
        """
        with self._state_lock:
            return self._sync_measures()

    def _measure_read(self, impl: str, key: str):
        if impl not in _MEASURE_IMPLS:
            raise ValueError(f"impl must be one of {_MEASURE_IMPLS}, got {impl!r}")
        with self._state_lock:
            if impl == "full":
                return full_measures(self._snapshots.current)[key]
            return getattr(self._sync_measures(), key)()

    def degrees(self, *, impl: str = "incremental") -> np.ndarray:
        """Per-node degree; ``impl="full"`` recomputes from the snapshot."""
        return self._measure_read(impl, "degrees")

    def weighted_degrees(self, *, impl: str = "incremental") -> np.ndarray:
        """Per-node strength; ``impl="full"`` recomputes from the snapshot."""
        return self._measure_read(impl, "weighted_degrees")

    def core_numbers(self, *, impl: str = "incremental") -> np.ndarray:
        """Per-node coreness; ``impl="full"`` runs the bulk peel afresh."""
        return self._measure_read(impl, "core_numbers")

    def components(self, *, impl: str = "incremental") -> tuple[int, np.ndarray]:
        """Component count and canonical labels (smallest-member ids)."""
        if impl not in _MEASURE_IMPLS:
            raise ValueError(f"impl must be one of {_MEASURE_IMPLS}, got {impl!r}")
        with self._state_lock:
            if impl == "full":
                state = full_measures(self._snapshots.current)
                return state["component_count"], state["component_labels"]
            engine = self._sync_measures()
            return engine.component_count, engine.component_labels()

    def measure_summary(self) -> dict[str, float]:
        """One consistent topology summary off maintained state.

        Engine sync and every read happen under the state lock, so the
        summary is a snapshot of *one* state even while a worker thread
        applies deltas — individual reads taken back to back could
        otherwise straddle an update.
        """
        with self._state_lock:
            engine = self._sync_measures()
            degs = engine.degrees()
            return {
                "edges": float(len(self._edge_keys)),
                "components": float(engine.component_count),
                "max_coreness": float(engine.max_core_number()),
                "mean_degree": float(degs.mean()) if len(degs) else 0.0,
            }

    @property
    def n_edges(self) -> int:
        """Edge count of the current state (O(1), no graph sync)."""
        return len(self._edge_keys)

    @property
    def frame(self) -> int:
        """Current trajectory frame."""
        return self._frame

    @property
    def cutoff(self) -> float:
        """Current cut-off (Å)."""
        return self._cutoff

    @property
    def builder(self) -> RINBuilder:
        """The underlying (cache-carrying) builder."""
        return self._builder

    @property
    def trajectory(self) -> Trajectory:
        """The trajectory being explored."""
        return self._builder.trajectory

    def positions(self) -> np.ndarray:
        """C-alpha coordinates of the current frame (the protein layout)."""
        return self.trajectory.ca_coordinates(self._frame)

    # ------------------------------------------------------------------
    def _sync_graph(self) -> None:
        """Replay pending key diffs into the mutable dict graph (lazy).

        Caller must hold :attr:`_state_lock` — without it a reader racing
        a worker-thread delta could replay a diff against keys that no
        longer match the marker, permanently corrupting the dict view.
        """
        target = self._edge_keys
        if self._synced_keys is target:
            return
        add = np.setdiff1d(target, self._synced_keys, assume_unique=True)
        remove = np.setdiff1d(self._synced_keys, target, assume_unique=True)
        self._graph.update_edges(
            add=zip(*divmod(add, self._n)) if len(add) else (),
            remove=zip(*divmod(remove, self._n)) if len(remove) else (),
        )
        self._synced_keys = target

    def _sync_measures(self) -> IncrementalMeasures:
        """Advance the maintained-measure engine to the current keys (lazy).

        Caller must hold :attr:`_state_lock`. A burst of slider moves is
        folded into one net :class:`~repro.graphkit.csr.CSRDelta`; the
        engine repairs core numbers along it (or full-peels when the net
        delta is large) and re-scans/unions components — see
        ``docs/ARCHITECTURE.md``, *The incremental measure engine*.
        """
        target = self._edge_keys
        if self._measures is None:
            self._measures = IncrementalMeasures(self._n, self._snapshots.current)
        elif self._measures_keys is not target:
            delta = CSRDelta.between(self._n, self._measures_keys, target)
            self._measures.apply(delta, self._snapshots.current)
        self._measures_keys = target
        return self._measures

    def _apply_target(self, target_edges: np.ndarray) -> EdgeUpdate:
        """Diff the current edge set against ``target_edges`` and apply."""
        with self._state_lock:
            if self._impl == "reference":
                # Naive path: set algebra over tuple pairs, per-edge dict
                # mutation — kept as the differential-testing twin.
                current = self._graph.edge_set()
                target = {(int(u), int(v)) for u, v in target_edges}
                to_add = target - current
                to_remove = current - target
                added, removed = self._graph.update_edges(
                    add=to_add, remove=to_remove
                )
                self._edge_keys = pack_edge_keys(self._n, self._graph.edge_array())
                self._synced_keys = self._edge_keys
                self._snapshots.reset(self._edge_keys)
                return EdgeUpdate(added=added, removed=removed)
            # Fast path: sorted-key set differences (two compiled merges)
            # and a CSR delta-apply into the double-buffered snapshot.
            # Neither the dict graph nor the measure engine is touched
            # here — both sync lazily on access.
            target_keys = pack_edge_keys(
                self._n, np.asarray(target_edges, dtype=np.int64)
            )
            delta = self._snapshots.delta_to(target_keys)
            self._snapshots.apply(delta)
            self._edge_keys = target_keys
            return EdgeUpdate(added=delta.added, removed=delta.removed)

    def set_cutoff(self, cutoff: float) -> EdgeUpdate:
        """Move the cut-off slider; returns the applied edge diff."""
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        update = self._apply_target(self._builder.edges(self._frame, cutoff))
        self._cutoff = float(cutoff)
        return update

    def set_frame(self, frame: int) -> EdgeUpdate:
        """Move the trajectory slider; returns the applied edge diff."""
        self.trajectory.frame(frame)  # validates
        update = self._apply_target(self._builder.edges(int(frame), self._cutoff))
        self._frame = int(frame)
        return update

    def set_state(self, *, frame: int | None = None, cutoff: float | None = None) -> EdgeUpdate:
        """Atomically update both sliders (one edge diff)."""
        new_frame = self._frame if frame is None else int(frame)
        new_cutoff = self._cutoff if cutoff is None else float(cutoff)
        if new_cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {new_cutoff}")
        self.trajectory.frame(new_frame)
        update = self._apply_target(self._builder.edges(new_frame, new_cutoff))
        self._frame, self._cutoff = new_frame, new_cutoff
        return update

    def scan(
        self,
        cutoffs: np.ndarray | list[float],
        *,
        workers: int | None = 0,
        executor=None,
    ) -> "CutoffScan":
        """Cut-off sweep of the *current frame* (the widget's scan view).

        Reuses the builder's cached residue-distance matrix — a scan
        issued right after slider moves costs zero distance computations —
        and runs the sharded descriptor sweep from
        :mod:`~repro.rin.scanning` (``workers``/``executor`` as in
        :func:`~repro.rin.scanning.cutoff_scan`; ``workers=0`` stays
        serial and in-process).
        """
        from ..graphkit.kernels import sorted_contact_order
        from .scanning import (
            CutoffScan,
            _resolve_executor,
            _validated_cutoffs,
            scan_sorted_contacts,
        )

        cutoffs = _validated_cutoffs(cutoffs)
        dm = self._builder.distance_matrix(self._frame)
        pairs, sorted_d = sorted_contact_order(
            dm, min_separation=self._builder.min_sequence_separation
        )
        ex, own = _resolve_executor(workers, executor)
        try:
            arrays = scan_sorted_contacts(
                self._n, pairs, sorted_d, cutoffs, executor=ex
            )
        finally:
            if own:
                ex.close()
        return CutoffScan(self._builder.criterion.value, cutoffs, *arrays)

    def rebuild(self) -> Graph:
        """Rebuild from scratch (reference implementation for testing)."""
        with self._state_lock:
            self._graph = self._builder.build(self._frame, self._cutoff)
            self._edge_keys = pack_edge_keys(self._n, self._graph.edge_array())
            self._synced_keys = self._edge_keys
            self._snapshots.reset(self._edge_keys)
            return self._graph
