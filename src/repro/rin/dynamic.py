"""DynamicRIN — incremental RIN updates for the interactive widget.

The paper's widget never rebuilds the network from scratch when a slider
moves: "Both routines consist of adding/removing edges and recomputing the
Maxent-Stress layout phase" (§V-B). :class:`DynamicRIN` is that edge-update
routine: it owns one :class:`~repro.graphkit.graph.Graph` whose node set is
fixed (the residues) and applies set diffs on cut-off or frame switches,
reporting how many edges changed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphkit import Graph
from ..md.trajectory import Trajectory
from .construction import RINBuilder
from .criteria import DistanceCriterion

__all__ = ["DynamicRIN", "EdgeUpdate"]


@dataclass(frozen=True)
class EdgeUpdate:
    """Result of one incremental update."""

    added: int
    removed: int

    @property
    def total(self) -> int:
        """Number of touched edges."""
        return self.added + self.removed


class DynamicRIN:
    """A RIN that follows the widget's (frame, cutoff) state.

    The edge diff between the current and target contact sets is computed
    on packed int64 edge keys (``u * n + v``) with sorted set differences
    (``impl="vectorized"``, default) — Python-level set algebra over tuple
    pairs remains available as ``impl="reference"`` for differential
    testing. Only the (typically small) diff touches the mutable graph.

    Examples
    --------
    >>> from repro.md import proteins, generate_trajectory
    >>> topo, native = proteins.build("2JOF")
    >>> traj = generate_trajectory(topo, native, 10, seed=1)
    >>> rin = DynamicRIN(traj, frame=0, cutoff=4.5)
    >>> update = rin.set_cutoff(6.0)   # adds edges only
    >>> update.removed
    0
    """

    def __init__(
        self,
        trajectory: Trajectory,
        *,
        frame: int = 0,
        cutoff: float = 4.5,
        criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
        min_sequence_separation: int = 1,
        impl: str = "vectorized",
    ):
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        if impl not in ("vectorized", "reference"):
            raise ValueError(f"impl must be 'vectorized' or 'reference', got {impl!r}")
        self._builder = RINBuilder(
            trajectory,
            criterion=criterion,
            min_sequence_separation=min_sequence_separation,
        )
        self._impl = impl
        self._frame = int(frame)
        self._cutoff = float(cutoff)
        trajectory.frame(self._frame)  # validates the index
        self._graph = self._builder.build(self._frame, self._cutoff)
        self._edge_keys = self._pack(self._graph.edge_array())

    def _pack(self, edges: np.ndarray) -> np.ndarray:
        """Sorted int64 keys ``u * n + v`` of canonical (u < v) edge pairs."""
        n = self._graph.number_of_nodes()
        if len(edges) == 0:
            return np.empty(0, dtype=np.int64)
        keys = edges[:, 0].astype(np.int64) * n + edges[:, 1]
        keys.sort()
        return keys

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The live RIN graph (mutated in place by the setters)."""
        return self._graph

    @property
    def frame(self) -> int:
        """Current trajectory frame."""
        return self._frame

    @property
    def cutoff(self) -> float:
        """Current cut-off (Å)."""
        return self._cutoff

    @property
    def builder(self) -> RINBuilder:
        """The underlying (cache-carrying) builder."""
        return self._builder

    @property
    def trajectory(self) -> Trajectory:
        """The trajectory being explored."""
        return self._builder.trajectory

    def positions(self) -> np.ndarray:
        """C-alpha coordinates of the current frame (the protein layout)."""
        return self.trajectory.ca_coordinates(self._frame)

    # ------------------------------------------------------------------
    def _apply_target(self, target_edges: np.ndarray) -> EdgeUpdate:
        """Diff the current edge set against ``target_edges`` and apply."""
        if self._impl == "reference":
            current = self._graph.edge_set()
            target = {(int(u), int(v)) for u, v in target_edges}
            to_add = target - current
            to_remove = current - target
            added, removed = self._graph.update_edges(add=to_add, remove=to_remove)
            self._edge_keys = self._pack(self._graph.edge_array())
            return EdgeUpdate(added=added, removed=removed)
        n = self._graph.number_of_nodes()
        target_keys = self._pack(np.asarray(target_edges, dtype=np.int64))
        # Both key arrays are sorted and duplicate-free: the set differences
        # are two compiled merges, no Python-level pair hashing.
        add_keys = np.setdiff1d(target_keys, self._edge_keys, assume_unique=True)
        remove_keys = np.setdiff1d(self._edge_keys, target_keys, assume_unique=True)
        added, removed = self._graph.update_edges(
            add=zip(*divmod(add_keys, n)) if len(add_keys) else (),
            remove=zip(*divmod(remove_keys, n)) if len(remove_keys) else (),
        )
        self._edge_keys = target_keys
        return EdgeUpdate(added=added, removed=removed)

    def set_cutoff(self, cutoff: float) -> EdgeUpdate:
        """Move the cut-off slider; returns the applied edge diff."""
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        update = self._apply_target(self._builder.edges(self._frame, cutoff))
        self._cutoff = float(cutoff)
        return update

    def set_frame(self, frame: int) -> EdgeUpdate:
        """Move the trajectory slider; returns the applied edge diff."""
        self.trajectory.frame(frame)  # validates
        update = self._apply_target(self._builder.edges(int(frame), self._cutoff))
        self._frame = int(frame)
        return update

    def set_state(self, *, frame: int | None = None, cutoff: float | None = None) -> EdgeUpdate:
        """Atomically update both sliders (one edge diff)."""
        new_frame = self._frame if frame is None else int(frame)
        new_cutoff = self._cutoff if cutoff is None else float(cutoff)
        if new_cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {new_cutoff}")
        self.trajectory.frame(new_frame)
        update = self._apply_target(self._builder.edges(new_frame, new_cutoff))
        self._frame, self._cutoff = new_frame, new_cutoff
        return update

    def rebuild(self) -> Graph:
        """Rebuild from scratch (reference implementation for testing)."""
        self._graph = self._builder.build(self._frame, self._cutoff)
        self._edge_keys = self._pack(self._graph.edge_array())
        return self._graph
