"""Domain analyses on RINs (paper §IV use cases).

Implements the analyses the paper motivates: hub detection, functionally
important residues via centralities (catalytic-site/interface proxies),
and the community-vs-secondary-structure comparison behind Figure 3
("the secondary structure elements (α-helices) are reflected in the
community structure of the RIN").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphkit import Graph
from ..graphkit.centrality import Betweenness, Closeness
from ..graphkit.community import PLM, Partition, nmi
from ..graphkit.csr import CSRGraph
from ..md.topology import Topology

__all__ = [
    "hubs",
    "top_central_residues",
    "community_structure_overlap",
    "StructureOverlap",
]


def hubs(g: Graph | CSRGraph, *, threshold: int | None = None) -> np.ndarray:
    """Residues whose degree is unusually high.

    With ``threshold=None`` uses the common RIN-literature convention
    mean + 2·std (papers cited in §IV observe cut-off choice drastically
    changes hub counts — exactly what this exposes).
    """
    degrees = g.degrees()
    if threshold is None:
        if len(degrees) == 0:
            return np.empty(0, dtype=np.int64)
        threshold = float(degrees.mean() + 2.0 * degrees.std())
    return np.flatnonzero(degrees >= threshold).astype(np.int64)


def top_central_residues(
    g: Graph, *, measure: str = "betweenness", k: int = 10
) -> list[tuple[int, float]]:
    """Top-k residues under betweenness (interface/information-flow proxy)
    or closeness (active-site proxy) — the role split described in §IV."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if measure == "betweenness":
        alg = Betweenness(g, normalized=True)
    elif measure == "closeness":
        alg = Closeness(g, normalized=True)
    else:
        raise ValueError(
            f"measure must be 'betweenness' or 'closeness', got {measure!r}"
        )
    return alg.run().ranking()[:k]


@dataclass(frozen=True)
class StructureOverlap:
    """Result of the Figure-3 community/secondary-structure comparison."""

    nmi: float  # NMI between communities and H/E segments
    purity: float  # fraction of structured residues whose community
    # majority-matches their segment
    n_communities: int
    n_segments: int


def community_structure_overlap(
    g: Graph,
    topology: Topology,
    *,
    partition: Partition | None = None,
    seed: int | None = 42,
) -> StructureOverlap:
    """Quantify how well communities align with helix/strand segments.

    The paper's Figure 3 shows this qualitatively for α3D at 4.5 Å; the
    returned NMI/purity make the claim testable. Only residues inside
    structured segments enter the comparison (coil linkers are noise for
    both labelings).
    """
    if partition is None:
        partition = PLM(g, seed=seed).run().get_partition()
    segment_labels = topology.helix_partition()
    structured = segment_labels > 0
    if not structured.any():
        return StructureOverlap(
            nmi=0.0,
            purity=0.0,
            n_communities=partition.number_of_subsets(),
            n_segments=0,
        )
    part_structured = Partition(partition.labels()[structured])
    seg_structured = Partition(segment_labels[structured])
    score = nmi(part_structured, seg_structured)

    # Majority purity: each segment votes for its dominant community.
    correct = 0
    total = 0
    for seg in np.unique(segment_labels[structured]):
        members = np.flatnonzero(segment_labels == seg)
        blocks = partition.labels()[members]
        _, counts = np.unique(blocks, return_counts=True)
        correct += int(counts.max())
        total += len(members)
    purity = correct / total if total else 0.0
    return StructureOverlap(
        nmi=float(score),
        purity=float(purity),
        n_communities=partition.number_of_subsets(),
        n_segments=int(len(np.unique(segment_labels[structured]))),
    )
