"""Cut-off scanning (Da Silveira et al. 2009, cited in paper §IV).

"It has been shown that the choice of the distance criterion can
influence which secondary structure features are emphasized and changes
in the distance cut-off can drastically alter the RIN topology, e.g.
influencing the number of hubs and connected components."

:func:`cutoff_scan` makes that analysis one call: sweep the cut-off and
collect per-value topology descriptors; :func:`criterion_comparison`
contrasts the three distance criteria at equivalent densities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphkit import Graph, connected_components, core_decomposition, local_clustering
from ..md.topology import Topology
from .analysis import hubs
from .construction import build_rin
from .criteria import DistanceCriterion

__all__ = ["CutoffScan", "cutoff_scan", "criterion_comparison"]


@dataclass
class CutoffScan:
    """Topology descriptors per scanned cut-off (aligned arrays)."""

    criterion: str
    cutoffs: np.ndarray
    edges: np.ndarray
    components: np.ndarray
    hubs: np.ndarray
    mean_degree: np.ndarray
    max_coreness: np.ndarray
    mean_clustering: np.ndarray

    def percolation_cutoff(self) -> float:
        """Smallest scanned cut-off where the RIN becomes connected.

        Returns ``nan`` if the graph never connects within the scan.
        """
        connected = self.components == 1
        if not connected.any():
            return float("nan")
        return float(self.cutoffs[int(np.argmax(connected))])

    def rows(self) -> list[list]:
        """Table rows (for reporting)."""
        return [
            [
                f"{c:.2f}",
                int(e),
                int(k),
                int(h),
                f"{d:.2f}",
                int(core),
                f"{cl:.3f}",
            ]
            for c, e, k, h, d, core, cl in zip(
                self.cutoffs,
                self.edges,
                self.components,
                self.hubs,
                self.mean_degree,
                self.max_coreness,
                self.mean_clustering,
            )
        ]


def cutoff_scan(
    topology: Topology,
    frame: np.ndarray,
    cutoffs: np.ndarray | list[float],
    *,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
) -> CutoffScan:
    """Sweep cut-offs and collect topology descriptors for one frame."""
    crit = DistanceCriterion.parse(criterion)
    cutoffs = np.asarray(sorted(float(c) for c in cutoffs))
    if len(cutoffs) == 0:
        raise ValueError("need at least one cutoff")
    n = len(cutoffs)
    edges = np.zeros(n, dtype=np.int64)
    comps = np.zeros(n, dtype=np.int64)
    hub_counts = np.zeros(n, dtype=np.int64)
    mean_deg = np.zeros(n)
    max_core = np.zeros(n, dtype=np.int64)
    mean_clust = np.zeros(n)
    for i, c in enumerate(cutoffs):
        g = build_rin(topology, frame, float(c), criterion=crit)
        edges[i] = g.number_of_edges()
        comps[i], _ = connected_components(g)
        hub_counts[i] = len(hubs(g))
        degs = g.degrees()
        mean_deg[i] = degs.mean() if len(degs) else 0.0
        core = core_decomposition(g)
        max_core[i] = core.max() if len(core) else 0
        mean_clust[i] = float(local_clustering(g).mean()) if len(degs) else 0.0
    return CutoffScan(
        criterion=crit.value,
        cutoffs=cutoffs,
        edges=edges,
        components=comps,
        hubs=hub_counts,
        mean_degree=mean_deg,
        max_coreness=max_core,
        mean_clustering=mean_clust,
    )


def criterion_comparison(
    topology: Topology,
    frame: np.ndarray,
    *,
    target_mean_degree: float = 8.0,
    candidates: np.ndarray | None = None,
) -> dict[str, dict[str, float]]:
    """Compare the three criteria at matched density (§IV's observation
    that the criterion choice changes which features are emphasized).

    For each criterion, finds the scanned cut-off whose mean degree is
    closest to ``target_mean_degree`` and reports the topology there —
    so differences reflect *structure*, not density.
    """
    if candidates is None:
        candidates = np.arange(2.5, 14.1, 0.5)
    out: dict[str, dict[str, float]] = {}
    for crit in DistanceCriterion:
        scan = cutoff_scan(topology, frame, candidates, criterion=crit)
        idx = int(np.argmin(np.abs(scan.mean_degree - target_mean_degree)))
        out[crit.value] = {
            "cutoff": float(scan.cutoffs[idx]),
            "edges": float(scan.edges[idx]),
            "components": float(scan.components[idx]),
            "hubs": float(scan.hubs[idx]),
            "max_coreness": float(scan.max_coreness[idx]),
            "mean_clustering": float(scan.mean_clustering[idx]),
        }
    return out
