"""Cut-off scanning (Da Silveira et al. 2009, cited in paper §IV).

"It has been shown that the choice of the distance criterion can
influence which secondary structure features are emphasized and changes
in the distance cut-off can drastically alter the RIN topology, e.g.
influencing the number of hubs and connected components."

:func:`cutoff_scan` makes that analysis one call: sweep the cut-off and
collect per-value topology descriptors; :func:`trajectory_cutoff_scan`
extends the sweep along the time axis (one scan per frame);
:func:`criterion_comparison` contrasts the three distance criteria at
equivalent densities.

Execution model (see ``docs/ARCHITECTURE.md``, *The sharded scanning
engine*): the per-cut-off descriptor loop and multi-frame scans are
expressed as pure **shard functions** over frozen shared-memory arrays
(the sorted contact order for one frame, the coordinate block for a
trajectory) and dispatched through a
:class:`~repro.graphkit.parallel.ShardedExecutor`. ``workers=0``
(default) runs the same shard functions serially in-process; any
``workers > 0`` run is bit-identical because every descriptor is a pure
function of the cut-off's edge set — component counts come from an
:class:`~repro.graphkit.components.IncrementalUnionFind` whose canonical
labels are independent of shard boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..graphkit import core_decomposition, local_clustering
from ..graphkit.components import connected_components
from ..graphkit.csr import CSRDelta, CSRSnapshotBuffer, pack_edge_keys
from ..graphkit.incremental import IncrementalMeasures
from ..graphkit.kernels import sorted_contact_order
from ..graphkit.parallel import ShardedExecutor, chunk_ranges
from ..graphkit.service import get_compute_service
from ..md.distances import residue_distance_matrix
from ..md.topology import Topology
from .analysis import hubs
from .construction import build_rin
from .criteria import DistanceCriterion

__all__ = [
    "CutoffScan",
    "TrajectoryScan",
    "cutoff_scan",
    "trajectory_cutoff_scan",
    "criterion_comparison",
]

_IMPLEMENTATIONS = ("vectorized", "reference")

#: Column order of the descriptor arrays a shard returns.
_DESCRIPTORS = (
    "edges",
    "components",
    "hubs",
    "mean_degree",
    "max_coreness",
    "mean_clustering",
)


@dataclass
class CutoffScan:
    """Topology descriptors per scanned cut-off (aligned arrays)."""

    criterion: str
    cutoffs: np.ndarray
    edges: np.ndarray
    components: np.ndarray
    hubs: np.ndarray
    mean_degree: np.ndarray
    max_coreness: np.ndarray
    mean_clustering: np.ndarray

    def percolation_cutoff(self) -> float:
        """Smallest scanned cut-off where the RIN becomes connected.

        Returns ``nan`` if the graph never connects within the scan.
        """
        connected = self.components == 1
        if not connected.any():
            return float("nan")
        return float(self.cutoffs[int(np.argmax(connected))])

    def rows(self) -> list[list]:
        """Table rows (for reporting)."""
        return [
            [
                f"{c:.2f}",
                int(e),
                int(k),
                int(h),
                f"{d:.2f}",
                int(core),
                f"{cl:.3f}",
            ]
            for c, e, k, h, d, core, cl in zip(
                self.cutoffs,
                self.edges,
                self.components,
                self.hubs,
                self.mean_degree,
                self.max_coreness,
                self.mean_clustering,
            )
        ]


@dataclass
class TrajectoryScan:
    """Cut-off scans of many frames: descriptor matrices ``[frame, cutoff]``."""

    criterion: str
    cutoffs: np.ndarray  # (n_cutoffs,)
    frames: np.ndarray  # (n_frames,) trajectory frame indices
    edges: np.ndarray  # (n_frames, n_cutoffs) int64
    components: np.ndarray
    hubs: np.ndarray
    mean_degree: np.ndarray
    max_coreness: np.ndarray
    mean_clustering: np.ndarray

    @property
    def n_frames(self) -> int:
        """Number of scanned frames."""
        return len(self.frames)

    def frame_scan(self, row: int) -> CutoffScan:
        """The :class:`CutoffScan` of the ``row``-th scanned frame."""
        return CutoffScan(
            criterion=self.criterion,
            cutoffs=self.cutoffs,
            edges=self.edges[row],
            components=self.components[row],
            hubs=self.hubs[row],
            mean_degree=self.mean_degree[row],
            max_coreness=self.max_coreness[row],
            mean_clustering=self.mean_clustering[row],
        )

    def percolation_series(self) -> np.ndarray:
        """Per-frame percolation cut-off (nan where never connected)."""
        return np.asarray(
            [self.frame_scan(i).percolation_cutoff() for i in range(self.n_frames)]
        )


# ----------------------------------------------------------------------
# shard functions (module-level: workers import them by reference)
# ----------------------------------------------------------------------
def _descriptor_rows(
    n_res: int,
    pairs: np.ndarray,
    sorted_d: np.ndarray,
    cutoffs: np.ndarray,
) -> tuple[np.ndarray, ...]:
    """Descriptor rows for ``cutoffs`` over one frame's sorted contacts.

    The edge set at cut-off ``c`` is a prefix of the distance-sorted
    contact order, so the walk folds each cut-off's *delta* into an
    incrementally maintained CSR snapshot and a delta-aware measure
    engine (:class:`~repro.graphkit.incremental.IncrementalMeasures`):
    degrees and component labels advance by vectorized delta folds, and
    core numbers carry forward too — traversal-bounded repair on small
    prefix steps, the vectorized full peel when a step is large. Per
    cut-off cost is sized by the delta (plus the O(n) descriptor
    reductions), never by re-accumulating the full edge set. Every
    descriptor is a pure function of the prefix edge set, which makes the
    rows independent of how a scan is split into shards.
    """
    k = len(cutoffs)
    edges = np.zeros(k, dtype=np.int64)
    comps = np.zeros(k, dtype=np.int64)
    hub_counts = np.zeros(k, dtype=np.int64)
    mean_deg = np.zeros(k)
    max_core = np.zeros(k, dtype=np.int64)
    mean_clust = np.zeros(k)
    prefix = np.searchsorted(sorted_d, cutoffs, side="right")
    snapshots = CSRSnapshotBuffer(n_res)
    engine = IncrementalMeasures(n_res)
    no_removals = np.empty(0, dtype=np.int64)
    prev = 0
    for i, m in enumerate(prefix):
        delta = CSRDelta(
            n_res,
            add_keys=pack_edge_keys(n_res, pairs[prev:m]),
            remove_keys=no_removals,
        )
        csr = snapshots.apply(delta)
        engine.apply(delta, csr)
        prev = m
        edges[i] = m
        comps[i] = engine.component_count
        degs = engine.degrees()
        hub_counts[i] = len(hubs(csr))
        mean_deg[i] = degs.mean() if len(degs) else 0.0
        max_core[i] = engine.max_core_number()
        mean_clust[i] = float(local_clustering(csr).mean()) if len(degs) else 0.0
    return edges, comps, hub_counts, mean_deg, max_core, mean_clust


def _cutoff_shard(payload: tuple, arrays: dict) -> tuple[np.ndarray, ...]:
    """Shard: descriptor rows for a contiguous cut-off slice of one frame.

    Shared arrays: ``pairs`` (contacts in ascending-distance order) and
    ``sorted_d`` (their distances) — frozen once per scan.
    """
    n_res, cutoffs_slice = payload
    return _descriptor_rows(n_res, arrays["pairs"], arrays["sorted_d"], cutoffs_slice)


def _frame_shard(payload: tuple, arrays: dict) -> tuple[np.ndarray, ...]:
    """Shard: full cut-off scans for a contiguous block of frames.

    Shared array: ``coords`` — the whole trajectory coordinate block,
    placed once; each worker slices only the frames it owns (zero-copy).
    """
    topology, criterion, cutoffs, frame_ids = payload
    coords = arrays["coords"]
    n_res = topology.n_residues
    rows = []
    for f in frame_ids:
        dm = residue_distance_matrix(topology, coords[int(f)], criterion)
        pairs, sorted_d = sorted_contact_order(dm, min_separation=1)
        rows.append(_descriptor_rows(n_res, pairs, sorted_d, cutoffs))
    return tuple(np.stack([row[j] for row in rows]) for j in range(len(_DESCRIPTORS)))


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
def _scan_reference(
    topology: Topology,
    frame: np.ndarray,
    cutoffs: np.ndarray,
    crit: DistanceCriterion,
    arrays: tuple[np.ndarray, ...],
) -> None:
    """Naive sweep: rebuild the RIN from scratch at every cut-off."""
    edges, comps, hub_counts, mean_deg, max_core, mean_clust = arrays
    for i, c in enumerate(cutoffs):
        g = build_rin(topology, frame, float(c), criterion=crit)
        edges[i] = g.number_of_edges()
        comps[i], _ = connected_components(g)
        hub_counts[i] = len(hubs(g))
        degs = g.degrees()
        mean_deg[i] = degs.mean() if len(degs) else 0.0
        core = core_decomposition(g, impl="reference")
        max_core[i] = core.max() if len(core) else 0
        mean_clust[i] = float(local_clustering(g).mean()) if len(degs) else 0.0


def _validated_cutoffs(cutoffs: np.ndarray | list[float]) -> np.ndarray:
    cutoffs = np.asarray(sorted(float(c) for c in cutoffs))
    if len(cutoffs) == 0:
        raise ValueError("need at least one cutoff")
    if cutoffs[0] <= 0:
        raise ValueError(f"cutoffs must be positive, got {cutoffs[0]}")
    return cutoffs


def _resolve_executor(workers: int | None, executor) -> tuple[Any, bool]:
    """The executor to scan with, and whether this call owns (closes) it.

    ``workers=0`` is the serial in-process twin (no pool, no shared-memory
    placement). Any ``workers > 0`` (or ``None``) takes a **lease** on the
    process-wide :class:`~repro.graphkit.service.ComputeService` instead
    of spawning a dedicated pool: repeated scans — even in tight loops —
    reuse one warm worker pool, and "owning" the executor only means
    releasing the lease's datasets afterwards, never tearing the pool
    down. Passing ``executor=`` (a ``ShardedExecutor`` or another lease)
    bypasses the service entirely.
    """
    if executor is not None:
        return executor, False
    if workers == 0:
        return ShardedExecutor(0), True
    return get_compute_service().lease(workers), True


def fan_out_frames(
    trajectory,
    frame_ids: np.ndarray,
    shard_fn,
    payload_tail: tuple,
    *,
    workers: int | None,
    executor: Any | None,
) -> list:
    """Run a frame-axis shard function over contiguous frame blocks.

    The shared fan-out used by every multi-frame workload (trajectory
    scans and the :mod:`~repro.rin.timeseries` series): the trajectory's
    coordinate block is placed in shared memory once, frames are split
    into one contiguous block per worker, and each payload is
    ``(topology, *payload_tail, frame_block)``. Results come back in
    block order; the per-call dataset is unlinked before returning.
    """
    ex, own = _resolve_executor(workers, executor)
    try:
        dataset = ex.share(coords=trajectory.coordinates)
        try:
            spans = chunk_ranges(len(frame_ids), max(1, ex.workers))
            payloads = [
                (trajectory.topology, *payload_tail, frame_ids[lo:hi])
                for lo, hi in spans
                if hi > lo
            ]
            return ex.run(shard_fn, payloads, dataset)
        finally:
            dataset.close()
    finally:
        if own:
            ex.close()


def scan_sorted_contacts(
    n_res: int,
    pairs: np.ndarray,
    sorted_d: np.ndarray,
    cutoffs: np.ndarray,
    *,
    executor: Any,
) -> tuple[np.ndarray, ...]:
    """Sharded descriptor sweep over a precomputed sorted contact order.

    Splits the cut-off axis into one contiguous slice per worker, shares
    the frozen contact arrays, and merges shard rows back in slice order
    (the deterministic shard→merge contract). This is the entry point for
    callers that already hold a distance matrix — e.g.
    :meth:`~repro.rin.dynamic.DynamicRIN.scan` reusing its builder cache.
    """
    dataset = executor.share(pairs=pairs, sorted_d=sorted_d)
    try:
        spans = chunk_ranges(len(cutoffs), max(1, executor.workers))
        payloads = [(n_res, cutoffs[lo:hi]) for lo, hi in spans if hi > lo]
        parts = executor.run(_cutoff_shard, payloads, dataset)
    finally:
        dataset.close()
    return tuple(
        np.concatenate([part[j] for part in parts])
        for j in range(len(_DESCRIPTORS))
    )


def cutoff_scan(
    topology: Topology,
    frame: np.ndarray,
    cutoffs: np.ndarray | list[float],
    *,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
    impl: str = "vectorized",
    workers: int | None = 0,
    executor: Any | None = None,
) -> CutoffScan:
    """Sweep cut-offs and collect topology descriptors for one frame.

    ``impl="vectorized"`` (default) computes the residue-distance matrix
    once and walks sorted-contact prefixes; ``impl="reference"`` rebuilds
    the RIN per cut-off (the naive path, kept for differential testing).

    ``workers`` shards the per-cut-off descriptor loop across a process
    pool (``0`` = serial in-process, bit-identical results; ``None`` =
    one worker per core). Pass a live ``executor`` instead to amortize
    pool start-up across scans — the call then never closes it.
    """
    if impl not in _IMPLEMENTATIONS:
        raise ValueError(f"impl must be one of {_IMPLEMENTATIONS}, got {impl!r}")
    crit = DistanceCriterion.parse(criterion)
    cutoffs = _validated_cutoffs(cutoffs)
    if impl == "reference":
        if workers != 0 or executor is not None:
            raise ValueError("impl='reference' is the serial twin; use workers=0")
        n = len(cutoffs)
        arrays = (
            np.zeros(n, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
            np.zeros(n),
            np.zeros(n, dtype=np.int64),
            np.zeros(n),
        )
        _scan_reference(topology, frame, cutoffs, crit, arrays)
    else:
        ex, own = _resolve_executor(workers, executor)
        try:
            dm = residue_distance_matrix(topology, frame, crit.value)
            pairs, sorted_d = sorted_contact_order(dm, min_separation=1)
            arrays = scan_sorted_contacts(
                topology.n_residues, pairs, sorted_d, cutoffs, executor=ex
            )
        finally:
            if own:
                ex.close()
    return CutoffScan(crit.value, cutoffs, *arrays)


def trajectory_cutoff_scan(
    trajectory,
    cutoffs: np.ndarray | list[float],
    *,
    frames: np.ndarray | list[int] | None = None,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
    workers: int | None = 0,
    executor: Any | None = None,
) -> TrajectoryScan:
    """Cut-off scans across trajectory frames, fanned out over the pool.

    The frame axis is the shard axis: each worker owns a contiguous block
    of frames and runs the full prefix sweep per frame against the
    trajectory coordinate block, which is placed in shared memory once
    and attached zero-copy. ``workers=0`` (default) runs the identical
    shard function serially; results are bit-identical for any worker
    count. Descriptors come back as ``[frame, cutoff]`` matrices on
    :class:`TrajectoryScan`.
    """
    crit = DistanceCriterion.parse(criterion)
    cutoffs = _validated_cutoffs(cutoffs)
    frame_ids = (
        np.arange(trajectory.n_frames, dtype=np.int64)
        if frames is None
        else np.asarray(frames, dtype=np.int64)
    )
    if len(frame_ids) == 0:
        raise ValueError("need at least one frame")
    for f in frame_ids:
        trajectory.frame(int(f))  # validates the index
    parts = fan_out_frames(
        trajectory,
        frame_ids,
        _frame_shard,
        (crit.value, cutoffs),
        workers=workers,
        executor=executor,
    )
    stacked = tuple(
        np.concatenate([part[j] for part in parts])
        for j in range(len(_DESCRIPTORS))
    )
    return TrajectoryScan(crit.value, cutoffs, frame_ids, *stacked)


def criterion_comparison(
    topology: Topology,
    frame: np.ndarray,
    *,
    target_mean_degree: float = 8.0,
    candidates: np.ndarray | None = None,
    impl: str = "vectorized",
) -> dict[str, dict[str, float]]:
    """Compare the three criteria at matched density (§IV's observation
    that the criterion choice changes which features are emphasized).

    For each criterion, finds the scanned cut-off whose mean degree is
    closest to ``target_mean_degree`` and reports the topology there —
    so differences reflect *structure*, not density.
    """
    if candidates is None:
        candidates = np.arange(2.5, 14.1, 0.5)
    out: dict[str, dict[str, float]] = {}
    for crit in DistanceCriterion:
        scan = cutoff_scan(topology, frame, candidates, criterion=crit, impl=impl)
        idx = int(np.argmin(np.abs(scan.mean_degree - target_mean_degree)))
        out[crit.value] = {
            "cutoff": float(scan.cutoffs[idx]),
            "edges": float(scan.edges[idx]),
            "components": float(scan.components[idx]),
            "hubs": float(scan.hubs[idx]),
            "max_coreness": float(scan.max_coreness[idx]),
            "mean_clustering": float(scan.mean_clustering[idx]),
        }
    return out
