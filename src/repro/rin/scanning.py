"""Cut-off scanning (Da Silveira et al. 2009, cited in paper §IV).

"It has been shown that the choice of the distance criterion can
influence which secondary structure features are emphasized and changes
in the distance cut-off can drastically alter the RIN topology, e.g.
influencing the number of hubs and connected components."

:func:`cutoff_scan` makes that analysis one call: sweep the cut-off and
collect per-value topology descriptors; :func:`criterion_comparison`
contrasts the three distance criteria at equivalent densities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphkit import connected_components, core_decomposition, local_clustering
from ..graphkit.csr import CSRDelta, CSRSnapshotBuffer, pack_edge_keys
from ..graphkit.kernels import sorted_contact_order
from ..md.distances import residue_distance_matrix
from ..md.topology import Topology
from .analysis import hubs
from .construction import build_rin
from .criteria import DistanceCriterion

__all__ = ["CutoffScan", "cutoff_scan", "criterion_comparison"]

_IMPLEMENTATIONS = ("vectorized", "reference")


@dataclass
class CutoffScan:
    """Topology descriptors per scanned cut-off (aligned arrays)."""

    criterion: str
    cutoffs: np.ndarray
    edges: np.ndarray
    components: np.ndarray
    hubs: np.ndarray
    mean_degree: np.ndarray
    max_coreness: np.ndarray
    mean_clustering: np.ndarray

    def percolation_cutoff(self) -> float:
        """Smallest scanned cut-off where the RIN becomes connected.

        Returns ``nan`` if the graph never connects within the scan.
        """
        connected = self.components == 1
        if not connected.any():
            return float("nan")
        return float(self.cutoffs[int(np.argmax(connected))])

    def rows(self) -> list[list]:
        """Table rows (for reporting)."""
        return [
            [
                f"{c:.2f}",
                int(e),
                int(k),
                int(h),
                f"{d:.2f}",
                int(core),
                f"{cl:.3f}",
            ]
            for c, e, k, h, d, core, cl in zip(
                self.cutoffs,
                self.edges,
                self.components,
                self.hubs,
                self.mean_degree,
                self.max_coreness,
                self.mean_clustering,
            )
        ]


def _scan_reference(
    topology: Topology,
    frame: np.ndarray,
    cutoffs: np.ndarray,
    crit: DistanceCriterion,
    arrays: tuple[np.ndarray, ...],
) -> None:
    """Naive sweep: rebuild the RIN from scratch at every cut-off."""
    edges, comps, hub_counts, mean_deg, max_core, mean_clust = arrays
    for i, c in enumerate(cutoffs):
        g = build_rin(topology, frame, float(c), criterion=crit)
        edges[i] = g.number_of_edges()
        comps[i], _ = connected_components(g)
        hub_counts[i] = len(hubs(g))
        degs = g.degrees()
        mean_deg[i] = degs.mean() if len(degs) else 0.0
        core = core_decomposition(g, impl="reference")
        max_core[i] = core.max() if len(core) else 0
        mean_clust[i] = float(local_clustering(g).mean()) if len(degs) else 0.0


def _scan_vectorized(
    topology: Topology,
    frame: np.ndarray,
    cutoffs: np.ndarray,
    crit: DistanceCriterion,
    arrays: tuple[np.ndarray, ...],
) -> None:
    """Prefix sweep: one distance matrix, one sort, searchsorted per cut-off.

    The residue-distance matrix is computed *once* for the whole scan and
    reduced to the distance-sorted contact order; the edge set at cut-off
    ``c`` is then a prefix of that order. Because the scan walks cut-offs
    in increasing order, consecutive prefixes differ by insertions only,
    so each snapshot is produced by an add-only
    :class:`~repro.graphkit.csr.CSRDelta` applied to the snapshot store,
    whose incrementally maintained arc array makes every step cost one
    merge sized by the delta — no dict-of-dicts graph and no re-sort of
    the accumulated edge set per cut-off.
    """
    edges, comps, hub_counts, mean_deg, max_core, mean_clust = arrays
    n_res = topology.n_residues
    dm = residue_distance_matrix(topology, frame, crit.value)
    pairs, sorted_d = sorted_contact_order(dm, min_separation=1)
    prefix = np.searchsorted(sorted_d, cutoffs, side="right")
    snapshots = CSRSnapshotBuffer(n_res)
    no_removals = np.empty(0, dtype=np.int64)
    prev = 0
    for i, m in enumerate(prefix):
        delta = CSRDelta(
            n_res, add_keys=pack_edge_keys(n_res, pairs[prev:m]), remove_keys=no_removals
        )
        csr = snapshots.apply(delta)
        prev = m
        edges[i] = m
        comps[i], _ = connected_components(csr)
        hub_counts[i] = len(hubs(csr))
        degs = csr.degrees()
        mean_deg[i] = degs.mean() if len(degs) else 0.0
        core = core_decomposition(csr)
        max_core[i] = core.max() if len(core) else 0
        mean_clust[i] = float(local_clustering(csr).mean()) if len(degs) else 0.0


def cutoff_scan(
    topology: Topology,
    frame: np.ndarray,
    cutoffs: np.ndarray | list[float],
    *,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
    impl: str = "vectorized",
) -> CutoffScan:
    """Sweep cut-offs and collect topology descriptors for one frame.

    ``impl="vectorized"`` (default) computes the residue-distance matrix
    once and walks sorted-contact prefixes; ``impl="reference"`` rebuilds
    the RIN per cut-off (the naive path, kept for differential testing).
    """
    if impl not in _IMPLEMENTATIONS:
        raise ValueError(f"impl must be one of {_IMPLEMENTATIONS}, got {impl!r}")
    crit = DistanceCriterion.parse(criterion)
    cutoffs = np.asarray(sorted(float(c) for c in cutoffs))
    if len(cutoffs) == 0:
        raise ValueError("need at least one cutoff")
    if cutoffs[0] <= 0:
        raise ValueError(f"cutoffs must be positive, got {cutoffs[0]}")
    n = len(cutoffs)
    edges = np.zeros(n, dtype=np.int64)
    comps = np.zeros(n, dtype=np.int64)
    hub_counts = np.zeros(n, dtype=np.int64)
    mean_deg = np.zeros(n)
    max_core = np.zeros(n, dtype=np.int64)
    mean_clust = np.zeros(n)
    arrays = (edges, comps, hub_counts, mean_deg, max_core, mean_clust)
    scan = _scan_vectorized if impl == "vectorized" else _scan_reference
    scan(topology, frame, cutoffs, crit, arrays)
    return CutoffScan(
        criterion=crit.value,
        cutoffs=cutoffs,
        edges=edges,
        components=comps,
        hubs=hub_counts,
        mean_degree=mean_deg,
        max_coreness=max_core,
        mean_clustering=mean_clust,
    )


def criterion_comparison(
    topology: Topology,
    frame: np.ndarray,
    *,
    target_mean_degree: float = 8.0,
    candidates: np.ndarray | None = None,
    impl: str = "vectorized",
) -> dict[str, dict[str, float]]:
    """Compare the three criteria at matched density (§IV's observation
    that the criterion choice changes which features are emphasized).

    For each criterion, finds the scanned cut-off whose mean degree is
    closest to ``target_mean_degree`` and reports the topology there —
    so differences reflect *structure*, not density.
    """
    if candidates is None:
        candidates = np.arange(2.5, 14.1, 0.5)
    out: dict[str, dict[str, float]] = {}
    for crit in DistanceCriterion:
        scan = cutoff_scan(topology, frame, candidates, criterion=crit, impl=impl)
        idx = int(np.argmin(np.abs(scan.mean_degree - target_mean_degree)))
        out[crit.value] = {
            "cutoff": float(scan.cutoffs[idx]),
            "edges": float(scan.edges[idx]),
            "components": float(scan.components[idx]),
            "hubs": float(scan.hubs[idx]),
            "max_coreness": float(scan.max_coreness[idx]),
            "mean_clustering": float(scan.mean_clustering[idx]),
        }
    return out
