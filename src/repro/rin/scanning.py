"""Cut-off scanning (Da Silveira et al. 2009, cited in paper §IV).

"It has been shown that the choice of the distance criterion can
influence which secondary structure features are emphasized and changes
in the distance cut-off can drastically alter the RIN topology, e.g.
influencing the number of hubs and connected components."

:func:`cutoff_scan` makes that analysis one call: sweep the cut-off and
collect per-value topology descriptors; :func:`trajectory_cutoff_scan`
extends the sweep along the time axis (one scan per frame);
:func:`criterion_comparison` contrasts the three distance criteria at
equivalent densities.

Execution model (see ``docs/ARCHITECTURE.md``, *The sharded scanning
engine*): the per-cut-off descriptor loop and multi-frame scans are
expressed as pure **shard functions** over frozen shared-memory arrays
(the sorted contact order for one frame, the coordinate block for a
trajectory) and dispatched through a
:class:`~repro.graphkit.parallel.ShardedExecutor`. ``workers=0``
(default) runs the same shard functions serially in-process; any
``workers > 0`` run is bit-identical because every descriptor is a pure
function of the cut-off's edge set — component counts come from an
:class:`~repro.graphkit.components.IncrementalUnionFind` whose canonical
labels are independent of shard boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..graphkit import core_decomposition, local_clustering
from ..graphkit.components import connected_components
from ..graphkit.csr import CSRDelta, CSRSnapshotBuffer, pack_edge_keys
from ..graphkit.incremental import IncrementalMeasures
from ..graphkit.kernels import sorted_contact_order
from ..graphkit.parallel import ShardedExecutor, chunk_ranges
from ..graphkit.service import get_compute_service
from ..md.distances import residue_distance_matrix
from ..md.topology import Topology
from ..graphkit.layout import maxent_stress_layout, maxent_stress_value
from .analysis import hubs
from .construction import build_rin
from .criteria import DistanceCriterion

__all__ = [
    "CutoffScan",
    "TrajectoryScan",
    "TrajectoryLayoutScan",
    "cutoff_scan",
    "trajectory_cutoff_scan",
    "trajectory_layout_scan",
    "criterion_comparison",
    "LAYOUT_CHAIN_LENGTH",
]

_IMPLEMENTATIONS = ("vectorized", "reference")

#: Column order of the descriptor arrays a shard returns.
_DESCRIPTORS = (
    "edges",
    "components",
    "hubs",
    "mean_degree",
    "max_coreness",
    "mean_clustering",
)


@dataclass
class CutoffScan:
    """Topology descriptors per scanned cut-off (aligned arrays)."""

    criterion: str
    cutoffs: np.ndarray
    edges: np.ndarray
    components: np.ndarray
    hubs: np.ndarray
    mean_degree: np.ndarray
    max_coreness: np.ndarray
    mean_clustering: np.ndarray

    def percolation_cutoff(self) -> float:
        """Smallest scanned cut-off where the RIN becomes connected.

        Returns ``nan`` if the graph never connects within the scan.
        """
        connected = self.components == 1
        if not connected.any():
            return float("nan")
        return float(self.cutoffs[int(np.argmax(connected))])

    def rows(self) -> list[list]:
        """Table rows (for reporting)."""
        return [
            [
                f"{c:.2f}",
                int(e),
                int(k),
                int(h),
                f"{d:.2f}",
                int(core),
                f"{cl:.3f}",
            ]
            for c, e, k, h, d, core, cl in zip(
                self.cutoffs,
                self.edges,
                self.components,
                self.hubs,
                self.mean_degree,
                self.max_coreness,
                self.mean_clustering,
            )
        ]


@dataclass
class TrajectoryScan:
    """Cut-off scans of many frames: descriptor matrices ``[frame, cutoff]``."""

    criterion: str
    cutoffs: np.ndarray  # (n_cutoffs,)
    frames: np.ndarray  # (n_frames,) trajectory frame indices
    edges: np.ndarray  # (n_frames, n_cutoffs) int64
    components: np.ndarray
    hubs: np.ndarray
    mean_degree: np.ndarray
    max_coreness: np.ndarray
    mean_clustering: np.ndarray

    @property
    def n_frames(self) -> int:
        """Number of scanned frames."""
        return len(self.frames)

    def frame_scan(self, row: int) -> CutoffScan:
        """The :class:`CutoffScan` of the ``row``-th scanned frame."""
        return CutoffScan(
            criterion=self.criterion,
            cutoffs=self.cutoffs,
            edges=self.edges[row],
            components=self.components[row],
            hubs=self.hubs[row],
            mean_degree=self.mean_degree[row],
            max_coreness=self.max_coreness[row],
            mean_clustering=self.mean_clustering[row],
        )

    def percolation_series(self) -> np.ndarray:
        """Per-frame percolation cut-off (nan where never connected)."""
        return np.asarray(
            [self.frame_scan(i).percolation_cutoff() for i in range(self.n_frames)]
        )


#: Frames per warm-start chain of :func:`trajectory_layout_scan`. Chains
#: are the *determinism unit*: each chain's first frame is a cold solve
#: and every later frame warm-starts from its predecessor's coordinates,
#: so the partition must be a pure function of the frame list — never of
#: the worker count — for ``workers=0`` and ``workers=k`` to stay
#: bit-identical. Longer chains amortize more cold solves but serialize
#: more work per shard.
LAYOUT_CHAIN_LENGTH = 4


@dataclass
class TrajectoryLayoutScan:
    """Per-frame Maxent-Stress layouts of a trajectory sweep.

    ``coordinates[i]`` is the embedding of ``frames[i]``; ``stress[i]``
    its :func:`~repro.graphkit.layout.maxent_stress_value`; ``cold[i]``
    whether the frame opened a warm-start chain (cold solve) or carried
    the previous frame's coordinates.
    """

    cutoff: float
    criterion: str
    frames: np.ndarray  # (n_frames,) trajectory frame indices
    coordinates: np.ndarray  # (n_frames, n_residues, dim)
    stress: np.ndarray  # (n_frames,)
    cold: np.ndarray  # (n_frames,) bool

    @property
    def n_frames(self) -> int:
        """Number of laid-out frames."""
        return len(self.frames)

    def frame_coordinates(self, frame: int) -> np.ndarray:
        """The embedding of trajectory frame ``frame``."""
        rows = np.flatnonzero(self.frames == frame)
        if len(rows) == 0:
            raise KeyError(f"frame {frame} is not part of this scan")
        return self.coordinates[int(rows[0])]


# ----------------------------------------------------------------------
# shard functions (module-level: workers import them by reference)
# ----------------------------------------------------------------------
def _descriptor_rows(
    n_res: int,
    pairs: np.ndarray,
    sorted_d: np.ndarray,
    cutoffs: np.ndarray,
) -> tuple[np.ndarray, ...]:
    """Descriptor rows for ``cutoffs`` over one frame's sorted contacts.

    The edge set at cut-off ``c`` is a prefix of the distance-sorted
    contact order, so the walk folds each cut-off's *delta* into an
    incrementally maintained CSR snapshot and a delta-aware measure
    engine (:class:`~repro.graphkit.incremental.IncrementalMeasures`):
    degrees and component labels advance by vectorized delta folds, and
    core numbers carry forward too — traversal-bounded repair on small
    prefix steps, the vectorized full peel when a step is large. Per
    cut-off cost is sized by the delta (plus the O(n) descriptor
    reductions), never by re-accumulating the full edge set. Every
    descriptor is a pure function of the prefix edge set, which makes the
    rows independent of how a scan is split into shards.
    """
    k = len(cutoffs)
    edges = np.zeros(k, dtype=np.int64)
    comps = np.zeros(k, dtype=np.int64)
    hub_counts = np.zeros(k, dtype=np.int64)
    mean_deg = np.zeros(k)
    max_core = np.zeros(k, dtype=np.int64)
    mean_clust = np.zeros(k)
    prefix = np.searchsorted(sorted_d, cutoffs, side="right")
    snapshots = CSRSnapshotBuffer(n_res)
    engine = IncrementalMeasures(n_res)
    no_removals = np.empty(0, dtype=np.int64)
    prev = 0
    for i, m in enumerate(prefix):
        delta = CSRDelta(
            n_res,
            add_keys=pack_edge_keys(n_res, pairs[prev:m]),
            remove_keys=no_removals,
        )
        csr = snapshots.apply(delta)
        engine.apply(delta, csr)
        prev = m
        edges[i] = m
        comps[i] = engine.component_count
        degs = engine.degrees()
        hub_counts[i] = len(hubs(csr))
        mean_deg[i] = degs.mean() if len(degs) else 0.0
        max_core[i] = engine.max_core_number()
        mean_clust[i] = float(local_clustering(csr).mean()) if len(degs) else 0.0
    return edges, comps, hub_counts, mean_deg, max_core, mean_clust


def _cutoff_shard(payload: tuple, arrays: dict) -> tuple[np.ndarray, ...]:
    """Shard: descriptor rows for a contiguous cut-off slice of one frame.

    Shared arrays: ``pairs`` (contacts in ascending-distance order) and
    ``sorted_d`` (their distances) — frozen once per scan.
    """
    n_res, cutoffs_slice = payload
    return _descriptor_rows(n_res, arrays["pairs"], arrays["sorted_d"], cutoffs_slice)


def _frame_shard(payload: tuple, arrays: dict) -> tuple[np.ndarray, ...]:
    """Shard: full cut-off scans for a contiguous block of frames.

    Shared array: ``coords`` — the whole trajectory coordinate block,
    placed once; each worker slices only the frames it owns (zero-copy).
    """
    topology, criterion, cutoffs, frame_ids = payload
    coords = arrays["coords"]
    n_res = topology.n_residues
    rows = []
    for f in frame_ids:
        dm = residue_distance_matrix(topology, coords[int(f)], criterion)
        pairs, sorted_d = sorted_contact_order(dm, min_separation=1)
        rows.append(_descriptor_rows(n_res, pairs, sorted_d, cutoffs))
    return tuple(np.stack([row[j] for row in rows]) for j in range(len(_DESCRIPTORS)))


def _layout_chain_shard(
    payload: tuple, arrays: dict
) -> tuple[np.ndarray, np.ndarray]:
    """Shard: warm-started layout solves for one chain of frames.

    The chain's first frame is a cold solve (deterministic from ``seed``);
    each later frame warm-starts from the previous frame's coordinates
    with the entropy weight already annealed (``warm_alpha``), so
    scrubbing never re-heats a near-converged embedding. Because the
    Barnes-Hut engine draws nothing from the rng during sweeps, the whole
    chain is a pure function of its payload — the shard→merge contract
    that keeps any worker count bit-identical to the serial twin.
    """
    (
        topology,
        criterion,
        cutoff,
        dim,
        k,
        seed,
        warm_alpha,
        params,
        frame_ids,
    ) = payload
    coords_block = arrays["coords"]
    layouts = []
    stress = []
    prev: np.ndarray | None = None
    for f in frame_ids:
        g = build_rin(topology, coords_block[int(f)], cutoff, criterion=criterion)
        csr = g.csr()
        kwargs = dict(params)
        if prev is not None:
            kwargs["initial"] = prev
            kwargs["alpha"] = warm_alpha
        x = maxent_stress_layout(csr, dim, k, seed=seed, **kwargs)
        layouts.append(x)
        stress.append(maxent_stress_value(csr, x, k))
        prev = x
    return np.stack(layouts), np.asarray(stress)


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
def _scan_reference(
    topology: Topology,
    frame: np.ndarray,
    cutoffs: np.ndarray,
    crit: DistanceCriterion,
    arrays: tuple[np.ndarray, ...],
) -> None:
    """Naive sweep: rebuild the RIN from scratch at every cut-off."""
    edges, comps, hub_counts, mean_deg, max_core, mean_clust = arrays
    for i, c in enumerate(cutoffs):
        g = build_rin(topology, frame, float(c), criterion=crit)
        edges[i] = g.number_of_edges()
        comps[i], _ = connected_components(g)
        hub_counts[i] = len(hubs(g))
        degs = g.degrees()
        mean_deg[i] = degs.mean() if len(degs) else 0.0
        core = core_decomposition(g, impl="reference")
        max_core[i] = core.max() if len(core) else 0
        mean_clust[i] = float(local_clustering(g).mean()) if len(degs) else 0.0


def _validated_cutoffs(cutoffs: np.ndarray | list[float]) -> np.ndarray:
    cutoffs = np.asarray(sorted(float(c) for c in cutoffs))
    if len(cutoffs) == 0:
        raise ValueError("need at least one cutoff")
    if cutoffs[0] <= 0:
        raise ValueError(f"cutoffs must be positive, got {cutoffs[0]}")
    return cutoffs


def _resolve_executor(workers: int | None, executor) -> tuple[Any, bool]:
    """The executor to scan with, and whether this call owns (closes) it.

    ``workers=0`` is the serial in-process twin (no pool, no shared-memory
    placement). Any ``workers > 0`` (or ``None``) takes a **lease** on the
    process-wide :class:`~repro.graphkit.service.ComputeService` instead
    of spawning a dedicated pool: repeated scans — even in tight loops —
    reuse one warm worker pool, and "owning" the executor only means
    releasing the lease's datasets afterwards, never tearing the pool
    down. Passing ``executor=`` (a ``ShardedExecutor`` or another lease)
    bypasses the service entirely.
    """
    if executor is not None:
        return executor, False
    if workers == 0:
        return ShardedExecutor(0), True
    return get_compute_service().lease(workers), True


def fan_out_frames(
    trajectory,
    frame_ids: np.ndarray,
    shard_fn,
    payload_tail: tuple,
    *,
    workers: int | None,
    executor: Any | None,
    spans: list[tuple[int, int]] | None = None,
) -> list:
    """Run a frame-axis shard function over contiguous frame blocks.

    The shared fan-out used by every multi-frame workload (trajectory
    scans and the :mod:`~repro.rin.timeseries` series): the trajectory's
    coordinate block is placed in shared memory once, frames are split
    into one contiguous block per worker, and each payload is
    ``(topology, *payload_tail, frame_block)``. Results come back in
    block order; the per-call dataset is unlinked before returning.

    ``spans`` overrides the frame partition with explicit ``(lo, hi)``
    slices of ``frame_ids``. Pass this when the block boundaries carry
    semantics the result must not depend on the worker count for — e.g.
    :func:`trajectory_layout_scan`'s warm-start chains, where a chain
    boundary means a cold solve. The default partition (one block per
    worker) is only safe for shard functions whose rows are independent
    per frame.
    """
    ex, own = _resolve_executor(workers, executor)
    try:
        dataset = ex.share(coords=trajectory.coordinates)
        try:
            if spans is None:
                spans = chunk_ranges(len(frame_ids), max(1, ex.workers))
            payloads = [
                (trajectory.topology, *payload_tail, frame_ids[lo:hi])
                for lo, hi in spans
                if hi > lo
            ]
            return ex.run(shard_fn, payloads, dataset)
        finally:
            dataset.close()
    finally:
        if own:
            ex.close()


def scan_sorted_contacts(
    n_res: int,
    pairs: np.ndarray,
    sorted_d: np.ndarray,
    cutoffs: np.ndarray,
    *,
    executor: Any,
) -> tuple[np.ndarray, ...]:
    """Sharded descriptor sweep over a precomputed sorted contact order.

    Splits the cut-off axis into one contiguous slice per worker, shares
    the frozen contact arrays, and merges shard rows back in slice order
    (the deterministic shard→merge contract). This is the entry point for
    callers that already hold a distance matrix — e.g.
    :meth:`~repro.rin.dynamic.DynamicRIN.scan` reusing its builder cache.
    """
    dataset = executor.share(pairs=pairs, sorted_d=sorted_d)
    try:
        spans = chunk_ranges(len(cutoffs), max(1, executor.workers))
        payloads = [(n_res, cutoffs[lo:hi]) for lo, hi in spans if hi > lo]
        parts = executor.run(_cutoff_shard, payloads, dataset)
    finally:
        dataset.close()
    return tuple(
        np.concatenate([part[j] for part in parts])
        for j in range(len(_DESCRIPTORS))
    )


def cutoff_scan(
    topology: Topology,
    frame: np.ndarray,
    cutoffs: np.ndarray | list[float],
    *,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
    impl: str = "vectorized",
    workers: int | None = 0,
    executor: Any | None = None,
) -> CutoffScan:
    """Sweep cut-offs and collect topology descriptors for one frame.

    ``impl="vectorized"`` (default) computes the residue-distance matrix
    once and walks sorted-contact prefixes; ``impl="reference"`` rebuilds
    the RIN per cut-off (the naive path, kept for differential testing).

    ``workers`` shards the per-cut-off descriptor loop across a process
    pool (``0`` = serial in-process, bit-identical results; ``None`` =
    one worker per core). Pass a live ``executor`` instead to amortize
    pool start-up across scans — the call then never closes it.
    """
    if impl not in _IMPLEMENTATIONS:
        raise ValueError(f"impl must be one of {_IMPLEMENTATIONS}, got {impl!r}")
    crit = DistanceCriterion.parse(criterion)
    cutoffs = _validated_cutoffs(cutoffs)
    if impl == "reference":
        if workers != 0 or executor is not None:
            raise ValueError("impl='reference' is the serial twin; use workers=0")
        n = len(cutoffs)
        arrays = (
            np.zeros(n, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
            np.zeros(n),
            np.zeros(n, dtype=np.int64),
            np.zeros(n),
        )
        _scan_reference(topology, frame, cutoffs, crit, arrays)
    else:
        ex, own = _resolve_executor(workers, executor)
        try:
            dm = residue_distance_matrix(topology, frame, crit.value)
            pairs, sorted_d = sorted_contact_order(dm, min_separation=1)
            arrays = scan_sorted_contacts(
                topology.n_residues, pairs, sorted_d, cutoffs, executor=ex
            )
        finally:
            if own:
                ex.close()
    return CutoffScan(crit.value, cutoffs, *arrays)


def trajectory_cutoff_scan(
    trajectory,
    cutoffs: np.ndarray | list[float],
    *,
    frames: np.ndarray | list[int] | None = None,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
    workers: int | None = 0,
    executor: Any | None = None,
) -> TrajectoryScan:
    """Cut-off scans across trajectory frames, fanned out over the pool.

    The frame axis is the shard axis: each worker owns a contiguous block
    of frames and runs the full prefix sweep per frame against the
    trajectory coordinate block, which is placed in shared memory once
    and attached zero-copy. ``workers=0`` (default) runs the identical
    shard function serially; results are bit-identical for any worker
    count. Descriptors come back as ``[frame, cutoff]`` matrices on
    :class:`TrajectoryScan`.
    """
    crit = DistanceCriterion.parse(criterion)
    cutoffs = _validated_cutoffs(cutoffs)
    frame_ids = (
        np.arange(trajectory.n_frames, dtype=np.int64)
        if frames is None
        else np.asarray(frames, dtype=np.int64)
    )
    if len(frame_ids) == 0:
        raise ValueError("need at least one frame")
    for f in frame_ids:
        trajectory.frame(int(f))  # validates the index
    parts = fan_out_frames(
        trajectory,
        frame_ids,
        _frame_shard,
        (crit.value, cutoffs),
        workers=workers,
        executor=executor,
    )
    stacked = tuple(
        np.concatenate([part[j] for part in parts])
        for j in range(len(_DESCRIPTORS))
    )
    return TrajectoryScan(crit.value, cutoffs, frame_ids, *stacked)


def trajectory_layout_scan(
    trajectory,
    cutoff: float,
    *,
    frames: np.ndarray | list[int] | None = None,
    criterion: DistanceCriterion | str = DistanceCriterion.MINIMUM,
    dim: int = 3,
    k: int = 1,
    seed: int | None = 42,
    warm_alpha: float = 0.05,
    chain_length: int = LAYOUT_CHAIN_LENGTH,
    layout_params: dict | None = None,
    workers: int | None = 0,
    executor: Any | None = None,
) -> TrajectoryLayoutScan:
    """Maxent-Stress layouts across trajectory frames, warm-started.

    The scrubbing workload: one embedding per frame at a fixed cut-off,
    so an :class:`~repro.core.pipeline.AsyncUpdatePipeline` frame switch
    (or an exported animation) never pays a layout solve interactively.
    Frames are solved in **ascending frame order** and partitioned into
    fixed ``chain_length`` warm-start chains: the first frame of a chain
    is a cold solve, every later frame warm-starts from its
    predecessor's coordinates with the entropy weight pre-annealed to
    ``warm_alpha`` (a near-converged embedding must not be re-heated).
    Chains are the shard payloads, so the partition — and therefore
    every float — is independent of ``workers``; and because the frame
    order is canonicalized, scrubbing a trajectory forward or backward
    yields bit-identical per-frame layouts. ``layout_params`` forwards
    extra :func:`~repro.graphkit.layout.maxent_stress_layout` keywords
    (``impl``, ``repulsion_theta``, schedule knobs) to every solve.
    """
    crit = DistanceCriterion.parse(criterion)
    if cutoff <= 0:
        raise ValueError(f"cutoff must be positive, got {cutoff}")
    if chain_length < 1:
        raise ValueError(f"chain_length must be >= 1, got {chain_length}")
    frame_ids = (
        np.arange(trajectory.n_frames, dtype=np.int64)
        if frames is None
        else np.asarray(frames, dtype=np.int64)
    )
    if len(frame_ids) == 0:
        raise ValueError("need at least one frame")
    for f in frame_ids:
        trajectory.frame(int(f))  # validates the index
    params = dict(layout_params or {})
    for reserved in ("initial", "seed", "alpha"):
        if reserved in params:
            raise ValueError(f"layout_params may not override {reserved!r}")
    # Canonical solve order: ascending unique frames, chained in fixed
    # lengths. The requested order (forward, backward, arbitrary scrub
    # sequence) only affects how results are gathered at the end.
    unique = np.unique(frame_ids)
    spans = [
        (lo, min(lo + chain_length, len(unique)))
        for lo in range(0, len(unique), chain_length)
    ]
    parts = fan_out_frames(
        trajectory,
        unique,
        _layout_chain_shard,
        (crit.value, float(cutoff), dim, k, seed, warm_alpha, params),
        workers=workers,
        executor=executor,
        spans=spans,
    )
    coords = np.concatenate([p[0] for p in parts])
    stress = np.concatenate([p[1] for p in parts])
    cold = np.zeros(len(unique), dtype=bool)
    cold[::chain_length] = True
    rows = np.searchsorted(unique, frame_ids)
    return TrajectoryLayoutScan(
        cutoff=float(cutoff),
        criterion=crit.value,
        frames=frame_ids,
        coordinates=coords[rows],
        stress=stress[rows],
        cold=cold[rows],
    )


def criterion_comparison(
    topology: Topology,
    frame: np.ndarray,
    *,
    target_mean_degree: float = 8.0,
    candidates: np.ndarray | None = None,
    impl: str = "vectorized",
) -> dict[str, dict[str, float]]:
    """Compare the three criteria at matched density (§IV's observation
    that the criterion choice changes which features are emphasized).

    For each criterion, finds the scanned cut-off whose mean degree is
    closest to ``target_mean_degree`` and reports the topology there —
    so differences reflect *structure*, not density.
    """
    if candidates is None:
        candidates = np.arange(2.5, 14.1, 0.5)
    out: dict[str, dict[str, float]] = {}
    for crit in DistanceCriterion:
        scan = cutoff_scan(topology, frame, candidates, criterion=crit, impl=impl)
        idx = int(np.argmin(np.abs(scan.mean_degree - target_mean_degree)))
        out[crit.value] = {
            "cutoff": float(scan.cutoffs[idx]),
            "edges": float(scan.edges[idx]),
            "components": float(scan.components[idx]),
            "hubs": float(scan.hubs[idx]),
            "max_coreness": float(scan.max_coreness[idx]),
            "mean_clustering": float(scan.mean_clustering[idx]),
        }
    return out
